"""Cache correctness: the cache may only ever make sweeps faster.

Covers the satellite checklist explicitly: hit on an identical spec,
miss on any config / seed / version-tag change, and a corrupted entry
being discarded and recomputed rather than trusted.
"""
import dataclasses
import json

import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.exec import (
    CellSpec,
    ResultCache,
    cell_key,
    config_from_dict,
    config_to_dict,
    run_sweep,
)

CFG = config_to_dict(small_config())


def spec(**overrides) -> CellSpec:
    base = dict(kind="sim", variant="wb-gc", workload="pers_hash",
                accesses=600, footprint_blocks=1024, seed=7, config=CFG)
    base.update(overrides)
    return CellSpec(**base)


class TestCellKey:
    def test_identical_specs_share_a_key(self):
        assert cell_key(spec()) == cell_key(spec())

    def test_any_field_change_changes_the_key(self):
        base = cell_key(spec())
        assert cell_key(spec(seed=8)) != base
        assert cell_key(spec(accesses=601)) != base
        assert cell_key(spec(workload="pers_swap")) != base
        assert cell_key(spec(variant="asit")) != base
        assert cell_key(spec(check=False)) != base

    def test_config_change_changes_the_key(self):
        other = dict(CFG)
        other["clock_ghz"] = 3.0
        assert cell_key(spec(config=other)) != cell_key(spec())

    def test_deep_config_change_changes_the_key(self):
        other = json.loads(json.dumps(CFG))
        other["security"]["hash_cycles"] += 1
        assert cell_key(spec(config=other)) != cell_key(spec())

    def test_version_tag_change_changes_the_key(self):
        assert cell_key(spec(), code_version="1.0.0/1") \
            != cell_key(spec(), code_version="1.0.1/1")
        assert cell_key(spec(), code_version="1.0.0/1") \
            != cell_key(spec(), code_version="1.0.0/2")

    def test_fault_plan_is_covered(self):
        a = spec(kind="fault", fault={"crash_after": 3})
        b = spec(kind="fault", fault={"crash_after": 4})
        assert cell_key(a) != cell_key(b)


class TestResultCache:
    def test_hit_on_identical_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_sweep([spec()], cache=cache)
        assert first.executed == 1 and first.cached == 0
        second = run_sweep([spec()], cache=cache)
        assert second.executed == 0 and second.cached == 1
        assert second.values[0].to_json() == first.values[0].to_json()

    def test_miss_on_seed_config_and_version_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep([spec()], cache=cache)
        assert run_sweep([spec(seed=8)], cache=cache).executed == 1
        other = dict(CFG)
        other["clock_ghz"] = 3.0
        assert run_sweep([spec(config=other)], cache=cache).executed == 1
        assert run_sweep([spec()], cache=cache,
                         code_version="next/1").executed == 1
        # and the original key still hits
        assert run_sweep([spec()], cache=cache).cached == 1

    @pytest.mark.parametrize("garbage", [
        "not json at all {",
        '{"key": "wrong-key", "payload": {}}',
        '{"payload": 42}',
        '["a", "list"]',
    ])
    def test_corrupted_entry_is_discarded_and_recomputed(self, tmp_path,
                                                         garbage):
        cache = ResultCache(tmp_path)
        fresh = run_sweep([spec()], cache=cache)
        key = cell_key(spec())
        path = cache.path_for(key)
        assert path.exists()
        path.write_text(garbage)
        again = run_sweep([spec()], cache=cache)
        assert again.executed == 1, "corrupted entry must not be trusted"
        assert again.values[0].to_json() == fresh.values[0].to_json()
        # the recompute healed the entry on disk
        assert run_sweep([spec()], cache=cache).cached == 1

    def test_get_returns_none_on_missing(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None


class TestCacheSchema:
    """The ``CACHE_SCHEMA`` contract around the "explore" kind addition.

    A new cell kind must never invalidate existing entries retroactively
    — old entries just sit at their old addresses — and an envelope
    carrying a kind the executor does not know must fail *loudly*, not
    silently recompute (it means an incompatible writer shares the
    cache directory).
    """

    def test_schema_is_two(self):
        from repro.exec.spec import CACHE_SCHEMA, KINDS

        assert CACHE_SCHEMA == 2
        assert "explore" in KINDS

    def test_key_pinned_under_explicit_version(self):
        # golden hash computed when "explore" joined KINDS: growing the
        # kind tuple must not shift keys of existing kinds — only the
        # key's own inputs (spec fields + code_version) may move it
        assert cell_key(spec(), code_version="golden/1") == \
            "ea87e8743ea257480b4a29c4fabe3ecdde8e8652c14c7b1e0d34016568b926b0"

    def test_schema_bump_relocates_but_never_rewrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        old_key = cell_key(spec(), code_version="1.0.0/1")
        cache.put(old_key, "sim", {"marker": 1})
        # schema-2 code computes a different address and misses cleanly
        new_key = cell_key(spec(), code_version="1.0.0/2")
        assert new_key != old_key
        assert cache.get(new_key) is None
        # the schema-1 entry is untouched at its old address
        assert cache.get(old_key) == {"marker": 1}

    def test_unknown_kind_envelope_rejected_loudly(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(spec())
        cache.put(key, "plasma", {"payload-looks": "fine"})
        with pytest.raises(ConfigError, match="plasma"):
            cache.get(key)

    def test_explore_kind_requires_a_case_plan(self):
        with pytest.raises(ConfigError):
            spec(kind="explore", fault=None)
        s = spec(kind="explore", check=False, fault={"mode": "probe"})
        assert cell_key(s) != cell_key(spec())


class TestConfigIO:
    def test_round_trip_through_json(self):
        cfg = small_config()
        data = json.loads(json.dumps(config_to_dict(cfg)))
        assert config_from_dict(data) == cfg

    def test_enums_encode_by_value(self):
        assert CFG["security"]["counter_mode"] == "general"
        assert CFG["security"]["update_scheme"] == "lazy"

    def test_unknown_field_rejected(self):
        data = dict(CFG)
        data["warp_drive"] = True
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_validation_reruns_on_decode(self):
        data = json.loads(json.dumps(CFG))
        data["clock_ghz"] = -1.0
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_decoded_config_is_a_real_dataclass(self):
        cfg = config_from_dict(CFG)
        assert dataclasses.is_dataclass(cfg)
        assert cfg.security.metadata_cache.num_sets > 0
