"""Sweep determinism: parallel == serial, order-free, zero resim when warm.

These are the acceptance properties of the orchestrator: cell results
must be a pure function of the cell spec, so neither the worker count
nor the position of a cell inside a sweep may leak into its value.
"""
import json

import pytest

from repro.common.config import small_config
from repro.exec import (
    CellSpec,
    ResultCache,
    cell_key,
    config_to_dict,
    run_sweep,
)
from repro.workloads import get_profile

CFG = config_to_dict(small_config())

VARIANTS = ("wb-gc", "asit")
WORKLOADS = ("pers_hash", "cactusADM")


def matrix(seed=11):
    return [
        CellSpec("sim", v, w, 600, 1024, seed, config=CFG)
        for v in VARIANTS for w in WORKLOADS
    ]


def fingerprints(report):
    return [json.dumps(v.to_json(), sort_keys=True) for v in report.values]


class TestDeterminism:
    def test_parallel_equals_serial_bitwise(self):
        serial = run_sweep(matrix(), jobs=1)
        parallel = run_sweep(matrix(), jobs=2)
        assert fingerprints(serial) == fingerprints(parallel)

    def test_results_independent_of_sweep_order(self):
        specs = matrix()
        forward = run_sweep(specs, jobs=2)
        backward = run_sweep(list(reversed(specs)), jobs=2)
        by_key_fwd = dict(zip(map(cell_key, specs),
                              fingerprints(forward)))
        by_key_bwd = dict(zip(map(cell_key, reversed(specs)),
                              fingerprints(backward)))
        assert by_key_fwd == by_key_bwd

    def test_results_independent_of_company(self):
        # a cell run alone equals the same cell run inside a sweep
        specs = matrix()
        together = fingerprints(run_sweep(specs, jobs=2))
        alone = [fingerprints(run_sweep([s]))[0] for s in specs]
        assert together == alone

    def test_outcomes_keep_spec_order(self):
        specs = matrix()
        report = run_sweep(specs, jobs=2)
        assert [o.spec for o in report.outcomes] == specs


class TestWarmCache:
    def test_second_run_executes_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(matrix(), jobs=2, cache=cache)
        assert cold.executed == len(matrix()) and cold.cached == 0
        warm = run_sweep(matrix(), jobs=2, cache=cache)
        assert warm.executed == 0
        assert warm.cached == len(matrix())
        assert fingerprints(warm) == fingerprints(cold)

    def test_cached_values_identical_across_worker_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(matrix(), jobs=1, cache=cache)
        warm = run_sweep(matrix(), jobs=2, cache=cache)
        assert fingerprints(warm) == fingerprints(cold)

    def test_no_cache_always_executes(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(matrix(), cache=cache)
        again = run_sweep(matrix(), cache=None)
        assert again.executed == len(matrix())

    def test_summary_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(matrix()[:2], cache=cache)
        mixed = run_sweep(matrix(), jobs=2, cache=cache)
        assert mixed.total == 4
        assert mixed.cached == 2 and mixed.executed == 2
        assert "4 cells, 2 simulated, 2 cached" in mixed.summary()


class TestInFlightDedup:
    """Satellite: duplicate specs inside one sweep compute exactly once."""

    def test_duplicates_compute_once_and_fan_out(self):
        specs = matrix()[:2]
        batch = [specs[0], specs[1], specs[0], specs[0]]
        report = run_sweep(batch)
        assert report.executed == 2
        assert report.deduped == 2
        assert report.cached == 0
        prints = fingerprints(report)
        assert prints[0] == prints[2] == prints[3]

    def test_dedup_outcomes_match_distinct_runs_bitwise(self):
        specs = matrix()[:2]
        batch = [specs[0], specs[1], specs[0]]
        deduped = fingerprints(run_sweep(batch, jobs=2))
        alone = fingerprints(run_sweep(specs))
        assert deduped == [alone[0], alone[1], alone[0]]

    def test_dedup_provenance_flags(self):
        spec = matrix()[0]
        report = run_sweep([spec, spec])
        first, twin = report.outcomes
        assert not first.cached and not first.deduped
        assert twin.deduped and not twin.cached
        assert twin.elapsed_s == 0.0
        assert "2 cells, 1 simulated" in report.summary()

    def test_cache_hits_beat_dedup(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = matrix()[0]
        run_sweep([spec], cache=cache)
        warm = run_sweep([spec, spec], cache=cache)
        assert warm.cached == 2 and warm.deduped == 0

    def test_progress_fires_for_twins_too(self):
        spec = matrix()[0]
        seen = []
        run_sweep([spec, spec, spec],
                  progress=lambda done, total, out: seen.append(done))
        assert seen == [1, 2, 3]


class TestProgress:
    def test_callback_sees_every_cell_once(self):
        seen = []
        run_sweep(matrix(), jobs=2,
                  progress=lambda done, total, out: seen.append(
                      (done, total, out.spec)))
        assert [d for d, _, _ in seen] == [1, 2, 3, 4]
        assert all(t == 4 for _, t, _ in seen)
        assert sorted(s.workload for _, _, s in seen) \
            == sorted(s.workload for s in matrix())


class TestSeedStreams:
    """Satellite: no two cells may ever share an RNG stream."""

    def test_profiles_draw_from_distinct_streams(self):
        traces = {
            name: get_profile(name).generate(seed=3, n=400, footprint=1024)
            for name in WORKLOADS
        }
        a = list(traces["pers_hash"])
        b = list(traces["cactusADM"])
        assert a != b
        # prefixes must differ too — not just lengths or tails
        assert a[:64] != b[:64]

    def test_same_profile_same_seed_is_reproducible(self):
        one = get_profile("pers_hash").generate(seed=3, n=400,
                                                footprint=1024)
        two = get_profile("pers_hash").generate(seed=3, n=400,
                                                footprint=1024)
        assert list(one) == list(two)

    def test_seed_change_changes_the_trace(self):
        one = get_profile("pers_hash").generate(seed=3, n=400,
                                                footprint=1024)
        two = get_profile("pers_hash").generate(seed=4, n=400,
                                                footprint=1024)
        assert list(one) != list(two)

    @pytest.mark.parametrize("variant_a,variant_b",
                             [("wb-gc", "asit")])
    def test_variants_share_the_trace(self, variant_a, variant_b):
        # deliberate: schemes are compared on identical traces, so the
        # derivation excludes the variant name
        a = CellSpec("sim", variant_a, "pers_hash", 600, 1024, 11,
                     config=CFG)
        b = CellSpec("sim", variant_b, "pers_hash", 600, 1024, 11,
                     config=CFG)
        ra, rb = run_sweep([a, b], jobs=1).values
        assert ra.data_reads + ra.data_writes \
            == rb.data_reads + rb.data_writes
