"""The crash-space explorer: probe/digest mechanics, DPOR-style pruning
soundness, planner frontier selection, double-crash cases, executor
integration (cache determinism, serial == parallel), and the
end-to-end mutant self-test.

The headline properties pinned here mirror the acceptance criteria:

* pruning is *sound* — a pruned class member reproduces its
  representative's result bit for bit under every plan variant;
* a warm-cache re-exploration performs zero re-simulations and its
  report compares equal to the cold run's;
* every seeded mutant is re-found without the explorer being told
  where to crash.
"""
import json

import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.exec import CellSpec, ResultCache, config_to_dict, run_sweep
from repro.explore import (
    ExploreCaseResult,
    ExploreProbe,
    partition_fires,
    phase2_plans,
    phase3_plans,
    run_explore,
    run_explore_cell,
    run_probe,
    second_crash_picks,
    select_frontier,
)
from repro.explore.planner import (
    FireClass,
    _spread,
    recovery_crash_picks,
    shutdown_plans,
)
from repro.explore.runner import run_case
from repro.workloads import get_profile


@pytest.fixture(scope="module")
def explore_cfg():
    """Smallest metadata cache: short traces still evict, so fires
    cluster into state-equivalent classes (pruning has work to do)."""
    return small_config(metadata_cache_bytes=512)


@pytest.fixture(scope="module")
def tiny_trace():
    return get_profile("pers_hash").generate(seed=2025, n=40,
                                             footprint=128)


@pytest.fixture(scope="module")
def steins_probe(explore_cfg, tiny_trace):
    return run_probe("steins", explore_cfg, tiny_trace)


# ------------------------------------------------------------- probing
class TestProbe:
    def test_records_point_index_digest(self, steins_probe, tiny_trace):
        assert steins_probe.fires
        for point, access_idx, digest in steins_probe.fires:
            assert isinstance(point, str) and "." in point
            assert 0 <= access_idx <= len(tiny_trace)
            int(digest, 16)  # a hex sha256
            assert len(digest) == 64

    def test_graceful_shutdown_fires_recorded_past_trace(
            self, steins_probe, tiny_trace):
        # flush_all fires carry access index len(trace): crashing there
        # resumes nothing
        assert any(i == len(tiny_trace)
                   for _, i, _ in steins_probe.fires)

    def test_probe_is_deterministic(self, explore_cfg, tiny_trace):
        again = run_probe("steins", explore_cfg, tiny_trace)
        assert again.fires == run_probe("steins", explore_cfg,
                                        tiny_trace).fires

    def test_json_round_trip(self, steins_probe):
        blob = json.dumps(steins_probe.to_json())
        assert ExploreProbe.from_json(json.loads(blob)) == steins_probe

    def test_mutant_probe_survives_midtrace_detection(
            self, explore_cfg, tiny_trace):
        # counter-reuse dies loudly on the first re-read; the probe must
        # return the fires reachable before that point, not explode
        probe = run_probe("steins", explore_cfg, tiny_trace,
                          mutant="counter-reuse")
        assert probe.fires


# ------------------------------------------------- partition + frontier
class TestPartition:
    def test_classes_merge_only_equal_state_and_resume(self,
                                                       steins_probe):
        classes = partition_fires(steins_probe)
        assert sum(len(c.fires) for c in classes) == \
            len(steins_probe.fires)
        for cls in classes:
            for k in cls.fires:
                point, idx, digest = steins_probe.fires[k - 1]
                assert idx == cls.access_index
                assert digest == cls.digest

    def test_eviction_fires_do_merge(self, steins_probe):
        # the 512 B cache forces clean evictions, which leave durable
        # state untouched -> at least one multi-member class exists
        classes = partition_fires(steins_probe)
        assert any(len(c.fires) > 1 for c in classes)
        assert len(classes) < len(steins_probe.fires)

    def test_frontier_none_keeps_everything(self, steins_probe):
        classes = partition_fires(steins_probe)
        kept, skipped = select_frontier(classes, None)
        assert kept == classes and skipped == 0

    def test_frontier_budget_prefers_changed_then_newest(self):
        mk = lambda rep, changed: FireClass(
            digest=f"d{rep}", access_index=rep, point="controller.write",
            fires=(rep,), changed=changed)
        classes = (mk(1, True), mk(2, False), mk(3, True), mk(4, False))
        kept, skipped = select_frontier(classes, 2)
        # both changed classes survive; probe order is preserved
        assert [c.rep for c in kept] == [1, 3]
        assert skipped == 2

    def test_frontier_order_is_probe_order(self):
        mk = lambda rep: FireClass(
            digest=f"d{rep}", access_index=rep, point="p.q",
            fires=(rep,), changed=True)
        classes = tuple(mk(r) for r in (5, 1, 9, 3))
        kept, _ = select_frontier(classes, 3)
        assert [c.rep for c in kept] == [5, 9, 3]


class TestPlanPicks:
    def test_spread_full_when_under_cap(self):
        assert _spread(4, None) == (1, 2, 3, 4)
        assert _spread(4, 10) == (1, 2, 3, 4)
        assert recovery_crash_picks(3, None) == (1, 2, 3)

    def test_spread_caps_with_endpoints(self):
        picks = _spread(100, 5)
        assert len(picks) == 5
        assert picks[0] == 1 and picks[-1] == 100
        assert picks == tuple(sorted(picks))

    def test_second_crash_picks_dedupe(self):
        assert second_crash_picks(0) == ()
        assert second_crash_picks(1) == (1,)
        assert second_crash_picks(2) == (1, 2)
        assert second_crash_picks(10) == (1, 6, 10)

    def test_shutdown_plans_cover_torn_variants(self):
        plans = shutdown_plans((0, 8))
        assert plans[0] == {"mode": "case", "at_shutdown": True}
        assert [p.get("residual_words") for p in plans] == [None, 0, 8]

    def test_phase_plan_shapes(self):
        cls = FireClass(digest="d", access_index=3, point="p.q",
                        fires=(7, 9), changed=True)
        assert phase2_plans(cls, 2, None) == [
            {"mode": "case", "crash_after": 7, "recovery_crash_after": 1},
            {"mode": "case", "crash_after": 7, "recovery_crash_after": 2},
        ]
        assert all(p["crash_after"] == 7 for p in phase3_plans(cls, 5))


# ---------------------------------------------------- pruning soundness
class TestPruningSoundness:
    def test_member_reproduces_representative(self, explore_cfg,
                                              tiny_trace, steins_probe):
        """The DPOR claim itself: same digest + same resume index =>
        byte-identical case result, under every plan variant."""
        classes = [c for c in partition_fires(steins_probe)
                   if len(c.fires) > 1]
        assert classes, "need at least one multi-member class"
        cls = max(classes, key=lambda c: len(c.fires))
        for variant in ({}, {"residual_words": 0},
                        {"recovery_crash_after": 1},
                        {"second_crash_after": 1}):
            rep = run_case("steins", explore_cfg, tiny_trace,
                           {"mode": "case", "crash_after": cls.fires[0],
                            **variant}).to_json()
            member = run_case("steins", explore_cfg, tiny_trace,
                              {"mode": "case",
                               "crash_after": cls.fires[-1],
                               **variant}).to_json()
            # only the injection-point *label* may differ inside a class
            rep.pop("crash_point")
            member.pop("crash_point")
            assert rep == member


# ----------------------------------------------------------- run_case
class TestRunCase:
    def test_trigger_past_span_is_no_crash(self, explore_cfg,
                                           tiny_trace):
        result = run_case("steins", explore_cfg, tiny_trace,
                          {"mode": "case", "crash_after": 10_000})
        assert result.outcome == "no_crash"

    def test_healthy_crash_matches(self, explore_cfg, tiny_trace):
        result = run_case("steins", explore_cfg, tiny_trace,
                          {"mode": "case", "crash_after": 5})
        assert result.outcome == "match"
        assert result.crash_point
        assert 0 <= result.crash_index < len(tiny_trace)
        assert result.recovery_fires > 0

    def test_double_crash_recovers_twice(self, explore_cfg, tiny_trace):
        first = run_case("steins", explore_cfg, tiny_trace,
                         {"mode": "case", "crash_after": 5})
        assert first.resumed_fires > 0
        result = run_case("steins", explore_cfg, tiny_trace,
                          {"mode": "case", "crash_after": 5,
                           "second_crash_after": first.resumed_fires // 2
                           + 1})
        assert result.outcome == "match"
        assert result.second_crash_point
        assert result.second_crash_index >= result.crash_index

    def test_crash_during_recovery_converges(self, explore_cfg,
                                             tiny_trace):
        result = run_case("steins", explore_cfg, tiny_trace,
                          {"mode": "case", "crash_after": 5,
                           "recovery_crash_after": 1})
        assert result.outcome == "match"
        assert result.recovery_crashed

    def test_shutdown_candidate_reaches_post_flush_state(
            self, explore_cfg, tiny_trace):
        result = run_case("steins", explore_cfg, tiny_trace,
                          {"mode": "case", "at_shutdown": True})
        assert result.outcome == "match"
        assert result.crash_point == "shutdown"
        assert result.crash_index == len(tiny_trace)

    def test_shutdown_candidate_catches_root_rollback(
            self, explore_cfg, tiny_trace):
        # the root only advances during the final flush, so the mutant
        # is invisible to every mid-trace crash -- the shutdown boundary
        # is the one candidate that can see it
        mid = run_case("steins", explore_cfg, tiny_trace,
                       {"mode": "case", "crash_after": 5,
                        "mutant": "root-rollback"})
        assert mid.outcome == "inapplicable"
        boundary = run_case("steins", explore_cfg, tiny_trace,
                            {"mode": "case", "at_shutdown": True,
                             "mutant": "root-rollback"})
        assert boundary.outcome == "diverged"

    def test_json_round_trip(self, explore_cfg, tiny_trace):
        result = run_case("steins", explore_cfg, tiny_trace,
                          {"mode": "case", "crash_after": 5})
        blob = json.dumps(result.to_json())
        assert ExploreCaseResult.from_json(json.loads(blob)) == result

    def test_unknown_mode_rejected(self, explore_cfg, tiny_trace):
        with pytest.raises(ConfigError):
            run_explore_cell("steins", {"mode": "warp"}, explore_cfg,
                             tiny_trace)

    def test_unknown_mutant_rejected(self, explore_cfg, tiny_trace):
        with pytest.raises(ConfigError):
            run_case("steins", explore_cfg, tiny_trace,
                     {"mode": "case", "crash_after": 5,
                      "mutant": "gremlin"})


# ------------------------------------------------- executor integration
class TestExecIntegration:
    def test_explore_cells_flow_through_run_sweep_and_cache(
            self, explore_cfg, tmp_path):
        cfg_dict = config_to_dict(explore_cfg)
        specs = [
            CellSpec("explore", "steins", "pers_hash", 40, 128, 2025,
                     check=False, config=cfg_dict,
                     fault={"mode": "probe"}),
            CellSpec("explore", "steins", "pers_hash", 40, 128, 2025,
                     check=False, config=cfg_dict,
                     fault={"mode": "case", "crash_after": 5}),
        ]
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(specs, cache=cache)
        assert cold.executed == 2
        assert isinstance(cold.values[0], ExploreProbe)
        assert isinstance(cold.values[1], ExploreCaseResult)
        warm = run_sweep(specs, cache=cache)
        assert warm.executed == 0 and warm.cached == 2
        assert warm.values[0] == cold.values[0]
        assert warm.values[1] == cold.values[1]

    def test_explore_cells_need_explicit_config(self):
        from repro.exec.pool import execute_cell

        spec = CellSpec("explore", "steins", "pers_hash", 40, 128, 2025,
                        check=False, fault={"mode": "probe"})
        with pytest.raises(ConfigError):
            execute_cell(spec)


# ----------------------------------------------------------- end to end
class TestRunExplore:
    def test_full_enumeration_finds_mutants_and_prunes(self):
        summary = run_explore(schemes=["steins"], accesses=40,
                              footprint=128)
        assert summary.ok
        assert summary.explored_total > 100
        assert summary.pruned_total > 0
        v = summary.variants[0]
        assert v.classes < v.fires
        assert set(v.explored) >= {"clean", "phase1", "phase2", "phase3"}
        caught = {m.name for m in summary.mutants if m.caught}
        assert caught == {"counter-reuse", "stale-read",
                          "skip-parent-update", "root-rollback"}

    def test_warm_rerun_zero_resims_and_equal_report(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kw = dict(schemes=["asit"], accesses=30, footprint=96,
                  with_mutants=False, cache=cache)
        cold = run_explore(**kw)
        assert cold.cells_executed > 0
        # warm rerun in parallel mode: nothing re-simulated, and the
        # report body (which excludes provenance) compares equal
        warm = run_explore(jobs=2, **kw)
        assert warm.cells_executed == 0
        assert warm.cells_cached == cold.cells_executed
        assert warm.to_json() == cold.to_json()
        assert json.dumps(warm.to_json(), sort_keys=True) == \
            json.dumps(cold.to_json(), sort_keys=True)

    def test_budget_mode_reports_skipped_loudly(self):
        summary = run_explore(schemes=["asit"], accesses=30,
                              footprint=96, with_mutants=False,
                              class_budget=10, recovery_cap=2)
        v = summary.variants[0]
        assert v.frontier == 10
        assert v.skipped_budget == v.classes - 10
        assert v.skipped_budget > 0
        assert summary.ok

    def test_metrics_are_mirrored(self):
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        summary = run_explore(schemes=["asit"], accesses=30,
                              footprint=96, with_mutants=False,
                              class_budget=5, recovery_cap=1,
                              metrics=registry)
        explored = registry.get("explore.candidates_explored")
        assert explored is not None
        assert explored.value == summary.explored_total
        assert registry.get("explore.candidates_pruned").value == \
            summary.pruned_total
