"""The fault-injection layer: registry, torn writes, WPQ drain, ADR
slot independence, crash-at-boundary regressions, and the campaign.

The acceptance sweep at the bottom is the issue's headline property: a
crash injected *inside* ``recover()`` followed by a second recovery
passes the golden-state check for Steins and every recoverable
baseline, at every recovery step the plan can reach.
"""
import pytest

from repro.common.config import small_config
from repro.common.errors import (
    ConfigError,
    CrashInjected,
    RecoveryError,
    TamperDetectedError,
)
from repro.faults.campaign import run_campaign
from repro.faults.registry import (
    INJECTION_POINTS,
    FaultPlan,
    ResidualBudget,
    armed,
    atomic,
    fire,
)
from repro.faults.torn import WORDS_PER_LINE, TornLine, tear_value
from repro.nvm.adr import ADRDomain
from repro.nvm.device import NVMDevice
from repro.nvm.layout import Region
from repro.sim.crash import (
    capture_golden,
    check_recovered,
    run_with_crash,
)
from repro.sim.system import SecureNVMSystem, make_layout
from repro.workloads import get_profile

RECOVERABLE = ("steins", "asit", "star", "scue")


# --------------------------------------------------------------- registry
class TestRegistry:
    def test_unknown_point_rejected_even_unarmed(self):
        with pytest.raises(ConfigError):
            fire("controller.typo")

    def test_fire_without_plan_is_noop(self):
        for point in INJECTION_POINTS:
            fire(point)

    def test_crash_after_counts_runtime_fires(self):
        with armed(FaultPlan(crash_after=3)) as plan:
            fire("controller.write")
            fire("controller.read")
            with pytest.raises(CrashInjected) as exc:
                fire("controller.evict")
        assert exc.value.point == "controller.evict"
        assert plan.crash_delivered
        assert plan.run_fires == 3

    def test_single_shot_delivery(self):
        with armed(FaultPlan(crash_after=1)) as plan:
            with pytest.raises(CrashInjected):
                fire("controller.write")
            # the retried operation after recovery must not crash again
            fire("controller.write")
        assert plan.run_fires == 2

    def test_recovery_fires_counted_separately(self):
        with armed(FaultPlan(crash_after=1,
                             recovery_crash_after=2)) as plan:
            with pytest.raises(CrashInjected):
                fire("controller.write")
            fire("recovery.step")
            with pytest.raises(CrashInjected) as exc:
                fire("recovery.step")
            fire("recovery.step")  # single shot again
        assert exc.value.point == "recovery.step"
        assert plan.recovery_fires == 3
        assert plan.run_fires == 1

    def test_atomic_window_suppresses(self):
        with armed(FaultPlan(crash_after=1)) as plan:
            with atomic():
                fire("controller.write")
                with atomic():  # nests
                    fire("recovery.step")
            assert plan.suppressed_fires == 2
            assert not plan.crash_delivered

    def test_one_plan_at_a_time(self):
        with armed(FaultPlan()):
            with pytest.raises(ConfigError):
                with armed(FaultPlan()):
                    pass

    def test_residual_budget_exhausts(self):
        plan = FaultPlan(residual_words=10)
        budget = plan.begin_crash_flush()
        assert budget.take(8) == 8
        assert budget.take(8) == 2
        assert budget.take(8) == 0
        assert FaultPlan().begin_crash_flush() is None


# ------------------------------------------------------------ torn writes
class TestTornWrites:
    def test_uniform_int_tuple_mixes_at_word_granularity(self):
        old = (0,) * WORDS_PER_LINE
        new = tuple(range(1, WORDS_PER_LINE + 1))
        torn = tear_value(old, new, 3)
        assert torn == new[:3] + old[3:]

    def test_opaque_value_becomes_marker(self):
        torn = tear_value(17, 42, 3)
        assert isinstance(torn, TornLine)
        assert torn.words_written == 3


# ------------------------------------------------------------- device WPQ
def make_device() -> NVMDevice:
    return NVMDevice(make_layout(small_config()))


class TestDeviceCrashDrain:
    def test_healthy_crash_preserves_everything(self):
        device = make_device()
        for i in range(10):
            device.write(Region.DATA, i, (i, i, i, i))
        device.crash()
        assert device.read(Region.DATA, 9) == (9, 9, 9, 9)
        assert device.pending_wpq() == 0

    def test_exhausted_budget_tears_and_rolls_back(self):
        device = make_device()
        device.write(Region.DATA, 0, (1, 1, 1, 1))   # funded
        device.write(Region.DATA, 1, (2, 2, 2, 2))   # torn at word 4
        device.write(Region.DATA, 2, (3, 3, 3, 3))   # rolled back
        device.crash_drain(ResidualBudget(WORDS_PER_LINE + 4))
        assert device.read(Region.DATA, 0) == (1, 1, 1, 1)
        with pytest.raises(TamperDetectedError):
            device.read(Region.DATA, 1)
        assert device.read(Region.DATA, 2) is None
        assert device.wpq_torn == 1 and device.wpq_rolled_back == 1

    def test_repeated_writes_roll_back_to_oldest_preimage(self):
        device = make_device()
        device.poke(Region.DATA, 5, (0, 0, 0, 0))
        device.write(Region.DATA, 5, (1, 1, 1, 1))
        device.write(Region.DATA, 5, (2, 2, 2, 2))
        device.crash_drain(ResidualBudget(0))
        assert device.read(Region.DATA, 5) == (0, 0, 0, 0)


# ------------------------------------------------------- ADR (satellite 1)
class TestADRFlushIndependence:
    def test_failing_slot_does_not_strand_the_rest(self):
        adr = ADRDomain(capacity_bytes=256)
        flushed = []
        adr.register("bad", 8, lambda value: 1 / 0)
        adr.register("good", 8, flushed.append)
        adr.put("bad", 1)
        adr.put("good", 2)
        with pytest.raises(ZeroDivisionError):
            adr.flush_on_crash()
        assert flushed == [2]


# --------------------------------------- run_with_crash edges (satellite 2)
class TestRunWithCrashEdges:
    @pytest.mark.parametrize("crash_at", ["start", "end"])
    def test_crash_at_trace_boundaries(self, crash_at):
        trace = get_profile("pers_hash").generate(seed=5, n=300,
                                                  footprint=2048)
        system = SecureNVMSystem("steins",
                                 small_config(metadata_cache_bytes=2048),
                                 check=True)
        at = 0 if crash_at == "start" else len(trace)
        report = run_with_crash(system, trace, crash_at=at,
                                flush_writes=True)
        assert report is not None
        system.verify_all_persisted()


# ---------------------------------------------------------------- campaign
@pytest.mark.slow
class TestCampaign:
    def test_smoke_is_deterministic_and_clean(self):
        kwargs = dict(schemes=["steins", "wb"], workloads=["pers_hash"],
                      crashes=24, seed=1, accesses=300, footprint=2048)
        first = run_campaign(**kwargs)
        second = run_campaign(**kwargs)
        assert first == second
        assert not first["outcomes"].get("diverged")
        assert first["outcomes"].get("recovered", 0) > 0
        assert first["cells"]["wb/pers_hash"]["outcomes"].get(
            "unsupported", 0) > 0

    def test_lossy_budget_is_detected_not_diverged(self):
        report = run_campaign(schemes=["steins"], workloads=["pers_hash"],
                              crashes=35, seed=2, accesses=300,
                              footprint=2048)
        assert not report["outcomes"].get("diverged")
        assert report["outcomes"].get("detected", 0) > 0


class TestMinimizeCase:
    """Regression: the crash trigger is a global fire *count*, so the
    injection point it lands on shifts with the prefix length.  An
    unpinned minimization can converge on a prefix that diverges through
    a *different* crash than the campaign hit — a minimized repro for
    the wrong bug.  ``require_point`` pins the search to the original
    failure.
    """

    @staticmethod
    def _fake_run_case(case, cfg, prefix):
        from repro.faults.campaign import CaseResult

        # short prefixes shift the same fire count onto an eviction
        # fire (a different, also-divergent crash); only prefixes long
        # enough to reach the original write fire reproduce the bug
        if len(prefix) >= 40:
            return CaseResult(case, "diverged",
                              crash_point="controller.write")
        if len(prefix) >= 10:
            return CaseResult(case, "diverged",
                              crash_point="metacache.evict")
        return CaseResult(case, "recovered")

    def test_unpinned_search_lands_on_the_wrong_fire(self, monkeypatch):
        from repro.faults import campaign

        monkeypatch.setattr(campaign, "run_case", self._fake_run_case)
        case = campaign.CampaignCase("steins", "pers_hash",
                                     crash_after=20)
        cfg = small_config()
        trace = get_profile("pers_hash").generate(seed=3, n=100,
                                                  footprint=2048)
        # the unpinned minimum accepts the shifted crash: rerunning it
        # would crash at metacache.evict, not the campaign's fire
        assert campaign.minimize_case(case, cfg, trace) == 10
        wrong = self._fake_run_case(case, cfg, trace.head(10))
        assert wrong.crash_point != "controller.write"

    def test_pinned_search_reproduces_the_original_crash(self,
                                                         monkeypatch):
        from repro.faults import campaign

        monkeypatch.setattr(campaign, "run_case", self._fake_run_case)
        case = campaign.CampaignCase("steins", "pers_hash",
                                     crash_after=20)
        cfg = small_config()
        trace = get_profile("pers_hash").generate(seed=3, n=100,
                                                  footprint=2048)
        n = campaign.minimize_case(case, cfg, trace,
                                   require_point="controller.write")
        assert n == 40
        repro_result = self._fake_run_case(case, cfg, trace.head(n))
        assert repro_result.outcome == "diverged"
        assert repro_result.crash_point == "controller.write"

    def test_campaign_reports_pinned_minimized_prefixes(self):
        report = run_campaign(schemes=["asit"], workloads=["pers_hash"],
                              crashes=12, seed=4, accesses=200,
                              footprint=2048)
        # whatever diverged (usually nothing on a healthy tree) must
        # carry a minimized prefix no longer than the full trace
        for entry in report["diverged"]:
            if "minimized_prefix" in entry:
                assert 1 <= entry["minimized_prefix"] <= 200


# ----------------------------------------- crash-during-recovery sweep
def drive_writes(system: SecureNVMSystem, n: int = 180) -> None:
    trace = get_profile("pers_hash").generate(seed=9, n=n, footprint=2048)
    for is_write, addr, gap in trace:
        system.advance(gap)
        if is_write:
            system.store(addr, flush=True)
        else:
            system.load(addr)


@pytest.mark.slow
@pytest.mark.parametrize("scheme", RECOVERABLE)
def test_crash_inside_every_recovery_step(scheme):
    """Crash recover() at its k-th step for every reachable k; the
    second recovery pass must land in the golden state each time."""
    k = 1
    while True:
        system = SecureNVMSystem(scheme,
                                 small_config(metadata_cache_bytes=2048),
                                 check=True)
        drive_writes(system)
        golden = capture_golden(system)
        plan = FaultPlan(recovery_crash_after=k)
        with armed(plan):
            system.crash()
            try:
                system.recover()
            except CrashInjected:
                system.crash()
                system.recover()
            check_recovered(system, golden)
        if not plan.recovery_crash_delivered:
            break  # k walked past the last reachable recovery step
        k += 1
    assert k > 1, "no recovery step was ever reached"


def test_wb_has_no_recovery_path():
    system = SecureNVMSystem("wb", small_config(), check=True)
    drive_writes(system, n=60)
    system.crash()
    with pytest.raises(RecoveryError):
        system.recover()
