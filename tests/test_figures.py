"""Figure harness smoke tests: shapes of the paper's headline results.

These run tiny simulations (the full-scale tables live in benchmarks/),
but the *directional* claims of the paper must already hold:

* ASIT writes ~2x the traffic of WB (Fig. 13),
* Steins-GC stays close to WB-GC in traffic and execution time,
* Steins-SC beats Steins-GC (Fig. 12),
* the recovery-time ordering of Fig. 17.
"""
import pytest

from repro.analysis.figures import FigureHarness, figure_config
from repro.common.units import KB, MB
from repro.sim.stats import geometric_mean


@pytest.fixture(scope="module")
def harness():
    # small but steady-state-reaching matrix, shared across tests
    return FigureHarness(accesses=12_000, footprint_blocks=1 << 14,
                         workloads=("pers_hash", "lbm_r"))


@pytest.mark.slow
def test_fig13_asit_doubles_write_traffic(harness):
    rows = harness.fig13_write_traffic()
    for workload, row in rows.items():
        assert row["asit"] == pytest.approx(2.0, rel=0.15)
        assert row["wb-gc"] == 1.0


@pytest.mark.slow
def test_fig13_ordering(harness):
    rows = harness.fig13_write_traffic()
    for workload, row in rows.items():
        assert row["steins-gc"] <= row["star"] + 0.05
        assert row["star"] < row["asit"] + 0.05


@pytest.mark.slow
def test_fig9_steins_close_to_wb(harness):
    rows = harness.fig9_execution_time()
    ratios = [row["steins-gc"] for row in rows.values()]
    assert geometric_mean(ratios) < 1.15
    for row in rows.values():
        assert row["steins-gc"] < row["asit"]


@pytest.mark.slow
def test_fig10_write_latency_ordering(harness):
    rows = harness.fig10_write_latency()
    for row in rows.values():
        assert row["steins-gc"] < row["asit"]


@pytest.mark.slow
def test_fig12_sc_beats_gc(harness):
    rows = harness.fig12_execution_time_sc()
    for workload, row in rows.items():
        # Steins-SC ~ WB-SC; Steins-GC takes longer in absolute terms,
        # which shows as > 1 when normalized to WB-SC (Fig. 12)
        assert row["steins-sc"] == pytest.approx(1.0, abs=0.2)
        assert row["steins-sc"] < row["steins-gc"]


@pytest.mark.slow
def test_fig15_energy_ordering(harness):
    rows = harness.fig15_energy()
    for row in rows.values():
        assert row["asit"] > row["steins-gc"]
        assert row["asit"] > 1.3   # the shadow writes cost real energy


def test_fig17_static_model():
    rows = FigureHarness.fig17_recovery_time((256 * KB, 4 * MB))
    assert set(rows) == {"256KB", "4MB"}
    at4 = rows["4MB"]
    assert at4["asit"] < at4["star"] < at4["steins-gc"] < at4["steins-sc"]
    assert at4["steins-sc"] == pytest.approx(0.44, rel=0.2)


@pytest.mark.slow
def test_cells_are_cached(harness):
    a = harness.cell("wb-gc", "pers_hash")
    b = harness.cell("wb-gc", "pers_hash")
    assert a is b


def test_figure_config_keeps_security_params():
    cfg = figure_config()
    assert cfg.security.metadata_cache.size_bytes == 256 * KB
    assert cfg.nvm.twr_ns == 300.0
    # only the CPU-side caches shrink
    assert cfg.hierarchy.l3.size_bytes < 2 * MB
