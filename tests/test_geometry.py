"""Tree geometry: level math, offsets, the paper's stated heights."""
import pytest

from repro.common.config import ConfigError, CounterMode, default_config
from repro.common.units import GB
from repro.integrity.geometry import TreeGeometry, geometry_for


def small_geometry(coverage=8) -> TreeGeometry:
    return TreeGeometry(num_data_blocks=4096, leaf_coverage=coverage,
                        root_arity=8)


def test_paper_heights_for_16gb():
    """Sec. IV: height 9 with general counters, 8 with split counters."""
    cfg = default_config()
    gc = geometry_for(cfg.num_data_blocks, cfg.security)
    assert gc.height == 9
    sc = geometry_for(
        cfg.with_counter_mode(CounterMode.SPLIT).num_data_blocks,
        cfg.with_counter_mode(CounterMode.SPLIT).security)
    assert sc.height == 8
    assert gc.num_data_blocks == 16 * GB // 64


def test_level_sizes_shrink_by_arity():
    g = small_geometry()
    assert g.level_sizes[0] == 512          # 4096 / 8
    for below, above in zip(g.level_sizes, g.level_sizes[1:]):
        assert above == -(-below // 8)
    assert g.level_sizes[-1] <= g.root_arity


def test_parent_child_inverse():
    g = small_geometry()
    for level in range(1, g.num_levels):
        for index in range(min(20, g.level_sizes[level])):
            for child in g.children(level, index):
                assert g.parent(*child) == (level, index)
                slot = g.parent_slot(*child)
                assert g.children(level, index)[slot] == child


def test_top_level_parent_is_root():
    g = small_geometry()
    top = g.top_level
    assert g.parent(top, 0) is None
    assert g.parent_slot(top, 0) == 0
    assert g.parent_slot(top, g.level_sizes[top] - 1) \
        == g.level_sizes[top] - 1


def test_leaf_block_mapping():
    g = small_geometry()
    assert g.leaf_for_block(0) == 0
    assert g.leaf_for_block(7) == 0
    assert g.leaf_for_block(8) == 1
    assert g.leaf_slot_for_block(13) == 5
    assert list(g.leaf_data_blocks(1)) == list(range(8, 16))


def test_offsets_are_dense_and_invertible():
    g = small_geometry()
    seen = set()
    for level in range(g.num_levels):
        for index in range(g.level_sizes[level]):
            off = g.node_offset(level, index)
            assert g.offset_to_node(off) == (level, index)
            seen.add(off)
    assert seen == set(range(g.total_nodes))


def test_branch_walks_to_top():
    g = small_geometry()
    branch = g.branch(100)
    assert branch[0] == (0, g.leaf_for_block(100))
    assert branch[-1][0] == g.top_level
    for (lo_level, lo_idx), (hi_level, hi_idx) in zip(branch, branch[1:]):
        assert (hi_level, hi_idx) == g.parent(lo_level, lo_idx)
    assert len(branch) == g.num_levels


def test_split_coverage_shrinks_tree():
    gc = TreeGeometry(num_data_blocks=1 << 18, leaf_coverage=8)
    sc = TreeGeometry(num_data_blocks=1 << 18, leaf_coverage=64)
    assert sc.num_levels < gc.num_levels
    assert sc.total_nodes < gc.total_nodes


def test_bounds_checking():
    g = small_geometry()
    with pytest.raises(ConfigError):
        g.check_node(99, 0)
    with pytest.raises(ConfigError):
        g.check_node(0, g.level_sizes[0])
    with pytest.raises(ConfigError):
        g.leaf_for_block(g.num_data_blocks)
    with pytest.raises(ConfigError):
        g.offset_to_node(g.total_nodes)
    with pytest.raises(ConfigError):
        g.children(0, 0)   # leaves have data children


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigError):
        TreeGeometry(num_data_blocks=0, leaf_coverage=8)
    with pytest.raises(ConfigError):
        TreeGeometry(num_data_blocks=8, leaf_coverage=8, arity=1)
    with pytest.raises(ConfigError):
        TreeGeometry(num_data_blocks=8, leaf_coverage=8, root_arity=4)


def test_tiny_tree_single_level():
    g = TreeGeometry(num_data_blocks=32, leaf_coverage=8, root_arity=8)
    assert g.num_levels == 1
    assert g.top_level == 0
    assert g.parent(0, 3) is None


def test_partial_last_children():
    # 520 leaves: level 1 has 65 nodes, the last with fewer children
    g = TreeGeometry(num_data_blocks=520 * 8, leaf_coverage=8,
                     root_arity=128)
    last = g.level_sizes[1] - 1
    kids = g.children(1, last)
    assert 1 <= len(kids) <= 8
    assert all(idx < g.level_sizes[0] for _, idx in kids)
