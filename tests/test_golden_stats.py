"""Golden stats-pin suite: the simulator's observable output is frozen.

Two properties, both load-bearing for the exact-time/fast-path work:

* **Pinned cells** — every (variant, workload) metric dump is
  byte-identical to ``fixtures/golden_stats.json``.  Integer-picosecond
  time plus deterministic traces make this exact: any refactor of the
  hot path (batching, memoization, event-driven skips) that changes a
  single count, latency, or energy value fails here, not in a figure
  three PRs later.  Regenerate the fixture ONLY for a change that is
  *meant* to alter simulated behaviour, never for a performance change.

* **Batch equivalence** — :meth:`SecureNVMSystem.run_stream` (the
  batched hot path) produces results byte-identical to the per-access
  ``advance``/``store``/``load`` loop it replaced.  Integer time sums
  are associative, which is what makes the deferred-cycle accumulation
  provably equivalent; this test is the proof's executable half.
"""
import json
from pathlib import Path

import pytest

from repro.common.config import small_config
from repro.sim.multi import MultiControllerSystem
from repro.sim.runner import VARIANTS, RunSpec, make_system, run_cell
from repro.workloads import get_profile

GOLDEN_PATH = Path(__file__).resolve().parent / "fixtures" / \
    "golden_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: the pinned single-controller grid (15 cells including multi)
WORKLOADS = ("mcf_r", "pers_hash")
SPEC = dict(accesses=3000, footprint_blocks=2048, seed=99)


def canon(value) -> str:
    """Canonical byte form used for the byte-identity comparison."""
    return json.dumps(value, sort_keys=True)


class TestPinnedCells:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_cell_byte_identical(self, variant, workload):
        spec = RunSpec(variant=variant, workload=workload, **SPEC)
        result = run_cell(spec, small_config())
        assert canon(result.to_json()) == \
            canon(GOLDEN[f"{variant}/{workload}"])

    def test_multi_controller_cell_byte_identical(self):
        mc = MultiControllerSystem("steins", small_config(),
                                   num_controllers=3)
        trace = get_profile("mcf_r").generate(7, 2000, 1024)
        for is_write, addr, gap in trace:
            mc.advance(gap)
            (mc.store if is_write else mc.load)(addr)
        r = mc.result()
        got = {
            "num_controllers": r.num_controllers,
            "exec_time_ns": r.exec_time_ns,
            "total_busy_ns": r.total_busy_ns,
            "nvm_write_traffic": r.nvm_write_traffic,
            "energy_nj": r.energy_nj,
            "parallel_speedup": r.parallel_speedup,
        }
        assert canon(got) == canon(GOLDEN["multi/steins-gc/mcf_r"])

    def test_fixture_covers_every_variant(self):
        expected = {f"{v}/{w}" for v in VARIANTS for w in WORKLOADS}
        expected.add("multi/steins-gc/mcf_r")
        assert set(GOLDEN) == expected


class TestBatchEquivalence:
    """run_stream == per-access advance/store/load, byte for byte."""

    @pytest.mark.parametrize("variant,workload", [
        ("steins-gc", "mcf_r"),      # read-heavy, non-persistent
        ("wb-sc", "pers_hash"),      # persistent: exercises clwb flushes
        ("scue", "libquantum"),      # distinct controller family
    ])
    def test_stream_matches_per_access_loop(self, variant, workload):
        profile = get_profile(workload)
        trace = profile.generate(5, 1500, 1024)
        flush = profile.persistent

        batched = make_system(variant, small_config())
        batched.run_stream(trace, flush_writes=flush)

        stepped = make_system(variant, small_config())
        for is_write, addr, gap in trace:
            stepped.advance(gap)
            if is_write:
                stepped.store(addr, flush=flush)
            else:
                stepped.load(addr)

        assert batched.clock.now_ps == stepped.clock.now_ps
        assert batched.accesses == stepped.accesses
        assert canon(batched.result(workload).to_json()) == \
            canon(stepped.result(workload).to_json())
