"""Three-level cache hierarchy: inclusion, writebacks, clwb."""
from repro.common.config import CacheConfig, HierarchyConfig
from repro.mem.hierarchy import CacheHierarchy, MemOp


def tiny_hierarchy() -> CacheHierarchy:
    return CacheHierarchy(HierarchyConfig(
        l1=CacheConfig(2 * 64, 1),
        l2=CacheConfig(4 * 64, 2),
        l3=CacheConfig(8 * 64, 2),
    ))


def test_cold_miss_produces_memory_read():
    h = tiny_hierarchy()
    res = h.access(100, is_write=False)
    assert [r.op for r in res.requests] == [MemOp.READ]
    assert res.requests[0].line_addr == 100


def test_hit_after_fill_is_free_of_requests():
    h = tiny_hierarchy()
    h.access(100, False)
    res = h.access(100, False)
    assert res.requests == []
    assert res.cycles == h.cfg.l1_hit_cycles


def test_l2_hit_latency():
    h = tiny_hierarchy()
    h.access(0, False)
    # push 0 out of the 2-line direct-mapped L1 but keep it in L2
    h.access(2, False)
    h.access(4, False)
    res = h.access(0, False)
    assert res.cycles in (h.cfg.l2_hit_cycles, h.cfg.l3_hit_cycles)
    assert res.requests == []


def test_dirty_line_eventually_written_back():
    h = tiny_hierarchy()
    h.access(0, is_write=True)
    writes = []
    # stream enough distinct lines through to force 0 out of every level
    for addr in range(1, 64):
        res = h.access(addr, False)
        writes += [r.line_addr for r in res.requests if r.op is MemOp.WRITE]
    assert 0 in writes


def test_clean_lines_never_written_back():
    h = tiny_hierarchy()
    for addr in range(64):
        res = h.access(addr, False)
        assert all(r.op is MemOp.READ for r in res.requests)


def test_clwb_clears_dirtiness():
    h = tiny_hierarchy()
    h.access(0, is_write=True)
    assert h.clwb(0)            # was dirty somewhere
    assert not h.clwb(0)        # now clean
    writes = []
    for addr in range(1, 64):
        res = h.access(addr, False)
        writes += [r.line_addr for r in res.requests if r.op is MemOp.WRITE]
    assert 0 not in writes      # no double writeback after clwb


def test_flush_dirty_lists_all_levels():
    h = tiny_hierarchy()
    h.access(0, True)
    h.access(2, True)
    assert set(h.flush_dirty()) >= {0, 2}


def test_clear_drops_everything():
    h = tiny_hierarchy()
    h.access(0, True)
    h.clear()
    res = h.access(0, False)
    assert [r.op for r in res.requests] == [MemOp.READ]


def test_write_allocates_line():
    h = tiny_hierarchy()
    res = h.access(7, is_write=True)
    # write miss fills the line from memory (write-allocate)
    assert MemOp.READ in [r.op for r in res.requests]
    res2 = h.access(7, is_write=False)
    assert res2.requests == []
