"""Tree inspection utilities and JSON result export."""
import pytest

from repro.analysis.export import (
    export_figure,
    export_results,
    load_figure,
    load_results,
)
from repro.common.config import CounterMode
from repro.common.errors import ConfigError
from repro.core.controller import SteinsController
from repro.integrity.inspect import render_branch, tree_summary, view_node
from repro.sim.runner import RunSpec, run_cell
from tests.test_controller_base import make_rig


class TestInspect:
    def rig(self):
        # roomy cache: the inspected leaves stay resident
        controller, _, _ = make_rig(CounterMode.GENERAL,
                                    SteinsController, 8192)
        for addr in range(0, 128, 4):
            controller.write_data(addr, addr)
        return controller

    def test_view_node_states(self):
        controller = self.rig()
        leaf = view_node(controller, 0, 0)
        assert leaf.cached and leaf.dirty
        assert leaf.location == "cache(dirty)"
        assert leaf.cached_gensum > 0
        untouched = view_node(controller, 0,
                              controller.geometry.level_sizes[0] - 1)
        assert untouched.location == "empty"
        assert untouched.verifies

    def test_view_persisted_node(self):
        controller = self.rig()
        controller.flush_all()
        controller.metacache.clear()
        v = view_node(controller, 0, 0)
        assert v.location == "nvm"
        assert v.persisted_gensum > 0
        assert v.verifies

    def test_render_branch(self):
        controller = self.rig()
        out = render_branch(controller, 0)
        assert "root[" in out
        assert "L0 idx 0" in out
        assert "cache(dirty)" in out
        assert "DOES NOT VERIFY" not in out

    def test_render_branch_flags_corruption(self):
        controller = self.rig()
        controller.flush_all()
        controller.metacache.clear()
        from repro.attacks import AttackInjector
        AttackInjector(controller.device).tamper_tree_counter(
            controller.geometry.node_offset(0, 0))
        out = render_branch(controller, 0)
        assert "DOES NOT VERIFY" in out

    def test_tree_summary(self):
        controller = self.rig()
        summary = tree_summary(controller)
        assert summary["cached_nodes"] > 0
        assert summary["dirty_nodes"] > 0
        controller.flush_all()
        summary2 = tree_summary(controller)
        assert summary2["dirty_nodes"] == 0
        assert summary2["persisted_nodes"] >= summary["persisted_nodes"]
        assert summary2["persisted_level_0"] > 0


class TestExport:
    def test_results_roundtrip(self, tmp_path):
        result = run_cell(RunSpec("wb-gc", "pers_hash", accesses=800,
                                  footprint_blocks=1024))
        path = tmp_path / "r.json"
        export_results(path, [result], context={"purpose": "test"})
        rows, context = load_results(path)
        assert context["purpose"] == "test"
        assert rows[0]["scheme"] == "wb"
        assert rows[0]["data_writes"] == result.data_writes

    def test_figure_roundtrip(self, tmp_path):
        rows = {"lbm_r": {"asit": 2.0, "steins-gc": 1.05}}
        path = tmp_path / "fig.json"
        export_figure(path, "fig13", rows, baseline_note="vs WB-GC")
        name, loaded = load_figure(path)
        assert name == "fig13"
        assert loaded == rows

    def test_load_errors(self, tmp_path):
        with pytest.raises(ConfigError):
            load_results(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ConfigError):
            load_results(bad)
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            load_figure(bad)
        bad.write_text("{}")
        with pytest.raises(ConfigError):
            load_figure(bad)
