"""simlint engine behavior: discovery, filtering, reporters, CLI."""
import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Severity,
    all_rules,
    main,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.lint.engine import discover_files

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
BAD = str(FIXTURES / "determinism_bad.py")


class TestDiscovery:
    def test_fixture_trees_are_pruned_from_directory_walks(self):
        walked = discover_files(["tests"])
        assert walked, "tests/ should contain python files"
        assert not [p for p in walked if "fixtures" in p.parts]

    def test_explicit_fixture_roots_still_lint(self):
        walked = discover_files([str(FIXTURES)])
        assert [p for p in walked if p.name == "persist_bad.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            discover_files(["no/such/place"])


class TestFiltering:
    def test_select_restricts_to_named_rules(self):
        result = run_lint([BAD], select={"SL101"})
        assert {d.rule_id for d in result.diagnostics} == {"SL101"}
        assert result.rules_run == ["SL101"]

    def test_select_accepts_rule_names(self):
        result = run_lint([BAD], select={"wall-clock"})
        assert {d.rule_id for d in result.diagnostics} == {"SL102"}

    def test_ignore_drops_rules(self):
        result = run_lint([BAD], ignore={"SL101", "SL103"})
        assert "SL101" not in {d.rule_id for d in result.diagnostics}
        assert "SL101" not in result.rules_run

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="SL777"):
            run_lint([BAD], select={"SL777"})


class TestSeverityGating:
    def test_exit_code_thresholds(self):
        result = run_lint([BAD])
        assert result.worst() == Severity.ERROR
        assert result.exit_code(Severity.WARNING) == 1
        assert result.exit_code(Severity.ERROR) == 1
        warn_only = run_lint([BAD], select={"SL103"})
        assert warn_only.worst() == Severity.WARNING
        assert warn_only.exit_code(Severity.WARNING) == 1
        assert warn_only.exit_code(Severity.ERROR) == 0


class TestReporters:
    def test_text_report_lines_are_precise_and_sorted(self):
        result = run_lint([BAD])
        lines = render_text(result).splitlines()
        assert lines[0].startswith(
            f"{BAD}:2:1: ERROR [SL101/unseeded-random]")
        assert lines[:-1] == sorted(lines[:-1])
        assert "finding(s)" in lines[-1]

    def test_clean_run_says_so(self):
        result = run_lint([str(FIXTURES / "persist_ok.py")])
        assert "clean" in render_text(result)

    def test_json_round_trips(self):
        result = run_lint([BAD])
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert len(payload["diagnostics"]) == len(result.diagnostics)
        first = payload["diagnostics"][0]
        assert set(first) == {"path", "line", "col", "rule_id",
                              "rule_name", "severity", "message"}
        by_sev = payload["summary"]["by_severity"]
        assert sum(by_sev.values()) == len(result.diagnostics)

    def test_runs_are_deterministic(self):
        a = run_lint([str(FIXTURES)])
        b = run_lint([str(FIXTURES)])
        assert render_json(a) == render_json(b)


class TestRuleCatalogue:
    def test_ids_are_unique_and_documented(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert len(ids) == len(set(ids))
        for rule in rules:
            assert rule.description
            assert rule.invariant
            assert rule.severity in (Severity.INFO, Severity.WARNING,
                                     Severity.ERROR)


class TestCli:
    def test_findings_exit_one(self, capsys):
        assert main([BAD]) == 1
        out = capsys.readouterr().out
        assert "SL101" in out

    def test_clean_exit_zero(self, capsys):
        assert main([str(FIXTURES / "persist_ok.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fail_on_error_ignores_warnings(self, capsys):
        assert main([BAD, "--select", "SL103",
                     "--fail-on", "error"]) == 0

    def test_json_flag_emits_valid_json(self, capsys):
        main([BAD, "--format", "json"])
        json.loads(capsys.readouterr().out)

    def test_usage_errors_exit_two(self, capsys):
        assert main(["/no/such/dir"]) == 2
        assert main([BAD, "--select", "SL777"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL001", "SL101", "SL201", "SL301", "SL401"):
            assert rule_id in out
