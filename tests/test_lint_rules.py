"""Per-rule simlint checks against the fixtures under fixtures/lint/.

Each rule family gets a positive fixture (violations at known lines)
and a negative fixture (idiomatic code that must stay silent).
"""
from pathlib import Path

from repro.analysis.lint import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def lint(*names: str):
    return run_lint([str(FIXTURES / n) for n in names])


def hits(result):
    """(rule_id, line) pairs, sorted."""
    return sorted((d.rule_id, d.line) for d in result.diagnostics)


class TestPersistRules:
    def test_flags_every_mutation_kind_and_reads(self):
        result = lint("persist_bad.py")
        assert hits(result) == [
            ("SL001", 5),   # subscript assignment
            ("SL001", 6),   # mutator method call
            ("SL001", 7),   # delete
            ("SL001", 8),   # augmented assignment
            ("SL002", 9),   # private read
        ]
        assert result.exit_code() == 1

    def test_own_state_and_accessors_are_silent(self):
        assert lint("persist_ok.py").diagnostics == []


class TestDeterminismRules:
    def test_flags_random_wallclock_and_set_iteration(self):
        result = lint("determinism_bad.py")
        assert hits(result) == [
            ("SL101", 2),   # import random
            ("SL101", 7),   # random.random()
            ("SL102", 8),   # time.time()
            ("SL103", 9),   # for over a set literal
        ]

    def test_seeded_rng_and_sorted_sets_are_silent(self):
        assert lint("determinism_ok.py").diagnostics == []


class TestExactnessRule:
    def test_flags_floats_in_counter_scope(self):
        result = lint("counters/exactness_bad.py")
        assert hits(result) == [
            ("SL201", 9),   # float literal
            ("SL201", 10),  # true division
            ("SL201", 11),  # float() conversion
        ]

    def test_integer_math_and_declared_float_helpers_are_silent(self):
        assert lint("counters/exactness_ok.py").diagnostics == []

    def test_rule_is_scoped_to_counter_directories(self, tmp_path):
        # the same float-laden code outside counters/core/integrity is
        # not counter math and must not be flagged
        copy = tmp_path / "reporting.py"
        copy.write_text(
            (FIXTURES / "counters" / "exactness_bad.py").read_text())
        assert run_lint([str(copy)]).diagnostics == []


class TestSimulatedTimeRule:
    def test_flags_float_time_annotations_and_arithmetic(self):
        result = lint("sim/simtime_bad.py")
        assert hits(result) == [
            ("SL202", 8),   # float parameter annotation
            ("SL202", 12),  # float return annotation on *_ps function
            ("SL202", 17),  # float class field
            ("SL202", 20),  # true division on now_ps
            ("SL202", 21),  # float() conversion
            ("SL202", 22),  # float literal in time arithmetic
        ]
        assert result.exit_code() == 1

    def test_reporting_boundaries_are_silent(self):
        assert lint("sim/simtime_ok.py").diagnostics == []

    def test_rule_is_scoped_to_simulation_directories(self, tmp_path):
        # identical code outside sim/nvm/mem/core is not hot-path
        # simulated time and must not be flagged
        copy = tmp_path / "analysis_helper.py"
        copy.write_text(
            (FIXTURES / "sim" / "simtime_bad.py").read_text())
        assert run_lint([str(copy)]).diagnostics == []


class TestStatsRule:
    def test_flags_typoed_attr_and_bump_key(self):
        result = lint("stats_bad.py")
        assert hits(result) == [
            ("SL301", 16),  # stats.hist
            ("SL301", 18),  # bump("replasy")
        ]

    def test_declared_counters_are_silent(self):
        assert lint("stats_ok.py").diagnostics == []

    def test_silent_without_collected_declarations(self, tmp_path):
        # no *Stats class in the analyzed set -> nothing to check against
        copy = tmp_path / "orphan.py"
        copy.write_text("def f(c):\n    c.stats.whatever += 1\n")
        assert run_lint([str(copy)]).diagnostics == []


class TestErrorRules:
    def test_flags_broad_and_swallowed_handlers(self):
        result = lint("errors_bad.py")
        assert hits(result) == [
            ("SL401", 8),   # except Exception: pass
            ("SL401", 12),  # bare except
            ("SL402", 16),  # RecoveryError swallowed
        ]

    def test_specific_or_reraising_handlers_are_silent(self):
        assert lint("errors_ok.py").diagnostics == []


class TestFaultHookRule:
    def test_flags_adhoc_triggers_and_unregistered_fire(self):
        result = lint("faults_bad.py")
        assert hits(result) == [
            ("SL403", 9),   # if crash_now:
            ("SL403", 11),  # while state.should_crash:
            ("SL403", 13),  # fire() not imported from the registry
        ]
        assert result.exit_code() == 1

    def test_registry_hooks_and_plan_fields_are_silent(self):
        assert lint("faults_ok.py").diagnostics == []


class TestOrchestrationRule:
    def test_flags_every_pool_import_form(self):
        result = lint("orchestration_bad.py")
        assert hits(result) == [
            ("SL501", 2),   # import multiprocessing
            ("SL501", 3),   # import multiprocessing.pool
            ("SL501", 4),   # import concurrent.futures
            ("SL501", 5),   # from multiprocessing import Pool
            ("SL501", 6),   # from concurrent.futures import ...
        ]
        assert result.exit_code() == 1

    def test_executor_package_and_run_sweep_callers_are_silent(self):
        assert lint("exec/pool_ok.py").diagnostics == []
        assert lint("orchestration_ok.py").diagnostics == []

    def test_reasoned_suppression_path(self, tmp_path):
        copy = tmp_path / "special.py"
        copy.write_text(
            "# simlint: disable-next=SL501 -- test: sanctioned fan-out\n"
            "import multiprocessing\n")
        assert run_lint([str(copy)]).diagnostics == []


class TestObservabilityRule:
    def test_flags_adhoc_stat_containers(self):
        result = lint("obs_bad.py")
        assert hits(result) == [
            ("SL601", 6),   # class DrainStats
            ("SL601", 11),  # class FlushSummaryReport
        ]
        assert result.exit_code() == 1

    def test_registry_use_and_test_classes_are_silent(self):
        assert lint("obs_ok.py").diagnostics == []

    def test_obs_package_and_grandfathered_files_are_sanctioned(
            self, tmp_path):
        src = (FIXTURES / "obs_bad.py").read_text()
        in_obs = tmp_path / "obs" / "metrics.py"
        in_obs.parent.mkdir()
        in_obs.write_text(src)
        grandfathered = tmp_path / "nvm" / "device.py"
        grandfathered.parent.mkdir()
        grandfathered.write_text(src)
        assert run_lint([str(in_obs)]).diagnostics == []
        assert run_lint([str(grandfathered)]).diagnostics == []


class TestOracleRule:
    def test_flags_controllers_missing_the_snapshot_hook(self):
        result = lint("oracle_bad.py")
        assert hits(result) == [
            ("SL701", 4),   # plain-name base, no hook
            ("SL701", 9),   # attribute base, no hook
        ]
        assert result.exit_code() == 1

    def test_hooked_controllers_and_bystanders_are_silent(self):
        assert lint("oracle_ok.py").diagnostics == []


class TestSchemeRegistryRule:
    def test_flags_named_controllers_never_registered(self):
        result = lint("schemes_bad.py")
        assert hits(result) == [
            ("SL1001", 4),   # plain-name base, name never registered
            ("SL1001", 11),  # shared-base subclass, name never registered
        ]
        assert result.exit_code() == 1

    def test_registered_bases_and_test_doubles_are_silent(self):
        assert lint("schemes_ok.py").diagnostics == []

    def test_registration_in_another_file_counts(self, tmp_path):
        """The collect pass is project-wide: the class and its
        register_scheme call may live in different files."""
        scheme = tmp_path / "ghost.py"
        scheme.write_text(
            "class GhostController(SecureMemoryController):\n"
            '    name = "ghost"\n'
            "    def _oracle_extra_state(self):\n"
            "        return {}\n")
        assert run_lint([str(scheme)]).exit_code() == 1
        wiring = tmp_path / "builtin.py"
        wiring.write_text('register_scheme("ghost", GhostController, c)\n')
        assert run_lint([str(scheme), str(wiring)]).diagnostics == []


class TestExploreRule:
    def test_flags_every_crash_loop_shape(self):
        result = lint("explore_bad.py")
        assert hits(result) == [
            ("SL801", 6),   # for over INJECTION_POINTS
            ("SL801", 12),  # FaultPlan inside a for body
            ("SL801", 20),  # FaultPlan inside a while body
            ("SL801", 26),  # for over plan.fire_log
        ]
        assert result.exit_code() == 1

    def test_single_plans_run_explore_and_plain_loops_are_silent(self):
        assert lint("explore_ok.py").diagnostics == []

    def test_sanctioned_crash_tooling_dirs_may_enumerate(self, tmp_path):
        src = (FIXTURES / "explore_bad.py").read_text()
        for pkg in ("explore", "oracle", "faults"):
            copy = tmp_path / pkg / "sweep.py"
            copy.parent.mkdir()
            copy.write_text(src)
            assert run_lint([str(copy)]).diagnostics == []

    def test_reasoned_suppression_path(self, tmp_path):
        copy = tmp_path / "one_off.py"
        copy.write_text(
            "for k in range(9):\n"
            "    # simlint: disable-next=SL801 -- test: bisecting one fire\n"
            "    plan = FaultPlan(crash_after=k)\n")
        assert run_lint([str(copy)]).diagnostics == []


class TestServeRule:
    def test_flags_every_network_import_form(self):
        result = lint("serve_bad.py")
        assert hits(result) == [
            ("SL901", 2),   # import socket
            ("SL901", 3),   # import asyncio
            ("SL901", 4),   # import selectors
            ("SL901", 5),   # from socket import ...
            ("SL901", 6),   # from asyncio import ...
        ]
        assert result.exit_code() == 1

    def test_service_package_and_service_callers_are_silent(self):
        assert lint("serve/service_ok.py").diagnostics == []
        assert lint("serve_ok.py").diagnostics == []

    def test_reasoned_suppression_path(self, tmp_path):
        copy = tmp_path / "special.py"
        copy.write_text(
            "# simlint: disable-next=SL901 -- test: sanctioned I/O\n"
            "import socket\n")
        assert run_lint([str(copy)]).diagnostics == []


class TestSuppressions:
    def test_reasoned_directives_silence_by_id_and_name(self):
        assert lint("suppress_reasoned.py").diagnostics == []

    def test_unreasoned_and_unknown_directives_report_sl000(self):
        result = lint("suppress_unreasoned.py")
        assert hits(result) == [
            ("SL000", 6),   # directive with no reason
            ("SL000", 7),   # directive naming unknown rule SL777
            ("SL102", 7),   # the unknown-rule directive suppresses nothing
        ]
        # the reason-less directive still suppresses its target rule, so
        # line 6's time.time() reports only the hygiene problem
        assert ("SL102", 6) not in hits(result)


class TestParseErrors:
    def test_unparseable_file_reports_sl999(self):
        result = lint("broken_syntax.py")
        assert [d.rule_id for d in result.diagnostics] == ["SL999"]
        assert result.exit_code() == 1


def test_src_tree_is_simlint_clean():
    """Meta-test: the shipped package itself passes its own linter."""
    result = run_lint(["src"])
    assert result.diagnostics == [], "\n".join(
        d.format() for d in result.diagnostics)
    assert result.files_checked > 80
