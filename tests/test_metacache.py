"""Metadata cache: stable way slots, LRU, dirty tracking (Table I)."""
import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigError
from repro.counters import GeneralCounterBlock
from repro.integrity.metacache import MetadataCache
from repro.integrity.node import SITNode


def node(level=0, index=0) -> SITNode:
    return SITNode(level, index, GeneralCounterBlock())


def make_cache(lines=8, ways=2) -> MetadataCache:
    return MetadataCache(CacheConfig(lines * 64, ways))


def test_insert_lookup():
    mc = make_cache()
    n = node()
    assert mc.insert(0, n, dirty=False) is None
    assert mc.lookup(0) is n
    assert mc.stats.hits == 1


def test_lookup_miss_counts():
    mc = make_cache()
    assert mc.lookup(5) is None
    assert mc.stats.misses == 1


def test_peek_no_side_effects():
    mc = make_cache()
    mc.insert(0, node(), False)
    mc.peek(0)
    mc.peek(99)
    assert mc.stats.hits == 0 and mc.stats.misses == 0


def test_duplicate_insert_rejected():
    mc = make_cache()
    mc.insert(0, node(), False)
    with pytest.raises(ConfigError):
        mc.insert(0, node(), False)


def test_way_slots_are_stable_and_distinct():
    mc = make_cache(lines=8, ways=4)
    sets = mc.num_sets
    offsets = [0, sets, 2 * sets, 3 * sets]   # all in set 0
    for off in offsets:
        mc.insert(off, node(index=off), False)
    slots = {mc.slot_of(off) for off in offsets}
    assert len(slots) == 4                    # each entry its own line
    first = mc.way_of(offsets[0])
    mc.lookup(offsets[0])                     # LRU touch must not move it
    assert mc.way_of(offsets[0]) == first


def test_eviction_returns_lru_victim_and_reuses_way():
    mc = make_cache(lines=4, ways=2)
    sets = mc.num_sets
    a, b, c = 0, sets, 2 * sets
    mc.insert(a, node(index=1), dirty=True)
    mc.insert(b, node(index=2), dirty=False)
    victim = mc.insert(c, node(index=3), dirty=False)
    assert victim is not None
    voff, vnode, vdirty = victim
    assert voff == a and vdirty and vnode.index == 1
    # the way freed by a is now used by c
    assert mc.way_of(c) in (0, 1)
    assert mc.stats.dirty_evictions == 1


def test_victim_candidate_does_not_evict():
    mc = make_cache(lines=4, ways=2)
    sets = mc.num_sets
    mc.insert(0, node(), True)
    mc.insert(sets, node(), False)
    cand = mc.victim_candidate(2 * sets)
    assert cand is not None and cand[0] == 0 and cand[2]
    assert mc.contains(0)   # still there
    assert mc.victim_candidate(1) is None  # other set has free ways


def test_mark_dirty_reports_transition():
    mc = make_cache()
    mc.insert(0, node(), dirty=False)
    assert mc.mark_dirty(0) is True     # clean -> dirty
    assert mc.mark_dirty(0) is False    # already dirty
    assert mc.is_dirty(0)
    mc.mark_clean(0)
    assert not mc.is_dirty(0)
    assert mc.mark_dirty(0) is True


def test_remove_frees_way():
    mc = make_cache(lines=4, ways=1)
    mc.insert(0, node(), False)
    removed = mc.remove(0)
    assert removed is not None
    assert not mc.contains(0)
    assert mc.remove(0) is None
    mc.insert(0, node(), False)  # way is reusable
    assert mc.contains(0)


def test_entries_iteration():
    mc = make_cache()
    mc.insert(0, node(index=0), dirty=True)
    mc.insert(1, node(index=1), dirty=False)
    all_entries = {(off, d) for off, _, d in mc.entries()}
    assert all_entries == {(0, True), (1, False)}
    assert dict(mc.dirty_entries()).keys() == {0}
    assert mc.dirty_count() == 1
    assert len(mc) == 2


def test_set_entries():
    mc = make_cache(lines=8, ways=2)
    sets = mc.num_sets
    mc.insert(0, node(index=0), True)
    mc.insert(sets, node(index=1), False)
    entries = mc.set_entries(0)
    assert {off for off, _, _ in entries} == {0, sets}


def test_clear_resets_ways():
    mc = make_cache(lines=4, ways=2)
    sets = mc.num_sets
    mc.insert(0, node(), True)
    mc.insert(sets, node(), True)
    mc.clear()
    assert len(mc) == 0
    # all ways free again: two inserts in set 0 evict nothing
    assert mc.insert(0, node(), False) is None
    assert mc.insert(sets, node(), False) is None


def test_way_of_unknown_offset():
    mc = make_cache()
    with pytest.raises(KeyError):
        mc.way_of(123)
