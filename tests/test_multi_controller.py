"""Multi-controller scalability model (paper Sec. IV-F)."""
import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.sim.multi import MultiControllerSystem


def make_multi(n=2, scheme="steins"):
    return MultiControllerSystem(scheme, small_config(),
                                 num_controllers=n)


def test_sharding_is_a_partition():
    multi = make_multi(3)
    for addr in range(300):
        assert 0 <= multi.shard_of(addr) < 3
    # round-robin: consecutive addresses land on different controllers
    assert {multi.shard_of(a) for a in range(3)} == {0, 1, 2}


def test_roundtrip_across_shards():
    multi = make_multi(2)
    rng = make_rng(81, "multi")
    for addr in rng.integers(0, 4000, 400):
        multi.store(int(addr), flush=True)
    assert multi.verify_all_persisted() > 0


def test_crash_recover_all_controllers():
    multi = make_multi(2)
    rng = make_rng(82, "multi-crash")
    for addr in rng.integers(0, 4000, 400):
        multi.store(int(addr), flush=True)
    multi.crash()
    reports = multi.recover()
    assert len(reports) == 2
    assert all(r.scheme == "steins" for r in reports)
    multi.verify_all_persisted()


def test_disjoint_clients_scale():
    """Sec. IV-F: requests to different DIMMs execute in parallel."""
    single = make_multi(1)
    quad = make_multi(4)
    rng = make_rng(83, "scale")
    addrs = [int(a) for a in rng.integers(0, 8000, 600)]
    for addr in addrs:
        single.store(addr, flush=True)
        quad.store(addr, flush=True)
    r1, r4 = single.result(), quad.result()
    # the same work spread over 4 MCs finishes much sooner
    assert r4.exec_time_ns < r1.exec_time_ns
    assert r4.parallel_speedup > 1.5
    assert r1.parallel_speedup == pytest.approx(1.0)


def test_colliding_clients_serialize():
    """Requests to one DIMM are processed serially by its controller."""
    multi = make_multi(4)
    # every access hits shard 0 (addresses = multiples of 4)
    for i in range(200):
        multi.store(4 * (i % 50), flush=True)
    result = multi.result()
    # only one controller did work: no parallelism to claim
    assert result.parallel_speedup < 1.2


def test_invalid_controller_count():
    with pytest.raises(ConfigError):
        make_multi(0)


def test_traffic_and_energy_aggregate():
    multi = make_multi(2)
    for addr in range(64):
        multi.store(addr, flush=True)
    result = multi.result()
    per_shard = [s.device.stats.total_writes for s in multi.shards]
    assert result.nvm_write_traffic == sum(per_shard)
    assert all(w > 0 for w in per_shard)   # both shards saw writes
    assert result.energy_nj > 0
