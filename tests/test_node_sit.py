"""SIT nodes, root register, and verification (paper Sec. II-C, Fig. 3)."""
import pytest

from repro.common.errors import TamperDetectedError
from repro.counters import GeneralCounterBlock, SplitCounterBlock
from repro.crypto.engine import make_engine
from repro.integrity.geometry import TreeGeometry
from repro.integrity.node import SITNode, make_empty_node
from repro.integrity.sit import SITRoot, verify_against_root, verify_node

ENGINE = make_engine(0x1234)


def make_node(level=1, index=5) -> SITNode:
    node = SITNode(level, index, GeneralCounterBlock([1, 2, 3, 4, 5, 6, 7, 8]))
    node.seal(ENGINE, parent_counter=36)
    return node


def test_seal_and_verify():
    node = make_node()
    verify_node(ENGINE, node, 36)   # no exception


def test_wrong_parent_counter_detected():
    node = make_node()
    with pytest.raises(TamperDetectedError):
        verify_node(ENGINE, node, 35)


def test_tampered_counter_detected():
    node = make_node()
    node.block.counters[0] += 1
    with pytest.raises(TamperDetectedError):
        verify_node(ENGINE, node, 36)


def test_hmac_binds_identity():
    a = make_node(level=1, index=5)
    b = SITNode(1, 6, GeneralCounterBlock([1, 2, 3, 4, 5, 6, 7, 8]))
    b.seal(ENGINE, 36)
    assert a.hmac != b.hmac   # same content, different address


def test_snapshot_roundtrip():
    node = make_node()
    restored = SITNode.from_snapshot(node.snapshot())
    assert restored.level == node.level
    assert restored.index == node.index
    assert restored.hmac == node.hmac
    assert restored.block == node.block


def test_snapshot_echo_extension():
    node = make_node()
    snap = node.snapshot() + (777,)
    assert SITNode.snapshot_echo(snap) == 777
    assert SITNode.snapshot_echo(node.snapshot()) is None
    assert SITNode.from_snapshot(snap).hmac == node.hmac


def test_bad_snapshot_rejected():
    with pytest.raises(ValueError):
        SITNode.from_snapshot(("not-a-node", 0, 0, None, 0))


def test_copy_independent():
    node = make_node()
    dup = node.copy()
    dup.block.counters[0] = 99
    assert node.block.counters[0] == 1


def test_gensum_delegation():
    node = make_node()
    assert node.gensum() == 36
    assert node.counter(2) == 3
    assert not node.is_leaf


def test_empty_node_verifies_under_zero():
    for split in (False, True):
        node = make_empty_node(0, 7, leaf_split=split, engine=ENGINE)
        verify_node(ENGINE, node, 0)
        assert node.gensum() == 0
        if split:
            assert isinstance(node.block, SplitCounterBlock)
        else:
            assert isinstance(node.block, GeneralCounterBlock)


def test_empty_node_is_deterministic():
    a = make_empty_node(2, 3, False, ENGINE)
    b = make_empty_node(2, 3, False, ENGINE)
    assert a.hmac == b.hmac


class TestRoot:
    def geometry(self):
        return TreeGeometry(num_data_blocks=4096, leaf_coverage=8,
                            root_arity=8)

    def test_counters_start_zero(self):
        root = SITRoot(self.geometry())
        assert all(c == 0 for c in root.counters)

    def test_set_add_get(self):
        root = SITRoot(self.geometry())
        root.set_counter(2, 10)
        root.add(2, 5)
        assert root.counter(2) == 15

    def test_negative_rejected(self):
        root = SITRoot(self.geometry())
        with pytest.raises(ValueError):
            root.set_counter(0, -1)

    def test_snapshot_restore(self):
        root = SITRoot(self.geometry())
        root.set_counter(1, 7)
        snap = root.snapshot()
        root.set_counter(1, 9)
        root.restore(snap)
        assert root.counter(1) == 7

    def test_verify_against_root(self):
        g = self.geometry()
        root = SITRoot(g)
        node = SITNode(g.top_level, 3, GeneralCounterBlock())
        node.block.set_counter(0, 4)
        node.seal(ENGINE, parent_counter=4)
        root.set_counter(3, 4)
        verify_against_root(ENGINE, root, node)
        root.set_counter(3, 5)
        with pytest.raises(TamperDetectedError):
            verify_against_root(ENGINE, root, node)

    def test_verify_against_root_level_check(self):
        g = self.geometry()
        root = SITRoot(g)
        node = SITNode(0, 0, GeneralCounterBlock())
        if g.top_level != 0:
            with pytest.raises(ValueError):
                verify_against_root(ENGINE, root, node)
