"""NVM device model: persistence, statistics, immutability, regions."""
import pytest

from repro.common.errors import LayoutError
from repro.nvm.device import NVMDevice
from repro.nvm.layout import Region, build_layout


@pytest.fixture
def device():
    return NVMDevice(build_layout(data_lines=1024, tree_lines=256,
                                  metadata_cache_lines=64,
                                  shadow_lines=64, bitmap_lines=8))


def test_read_write_roundtrip(device):
    device.write(Region.DATA, 5, ("data", 123, 456, 1))
    assert device.read(Region.DATA, 5) == ("data", 123, 456, 1)


def test_unwritten_reads_default(device):
    assert device.read(Region.DATA, 7) is None
    assert device.read(Region.TREE, 0, default="empty") == "empty"


def test_stats_count_per_region(device):
    device.write(Region.DATA, 0, 1)
    device.write(Region.TREE, 0, 2)
    device.write(Region.TREE, 1, 3)
    device.read(Region.TREE, 0)
    assert device.stats.writes[Region.DATA] == 1
    assert device.stats.writes[Region.TREE] == 2
    assert device.stats.reads[Region.TREE] == 1
    assert device.stats.total_writes == 3
    assert device.stats.total_reads == 1
    snap = device.stats.snapshot()
    assert snap["write_tree"] == 2
    assert snap["total_reads"] == 1


def test_peek_poke_bypass_stats(device):
    device.poke(Region.DATA, 3, 99)
    assert device.peek(Region.DATA, 3) == 99
    assert device.stats.total_writes == 0
    assert device.stats.total_reads == 0


def test_out_of_range_rejected(device):
    with pytest.raises(LayoutError):
        device.read(Region.DATA, 1024)
    with pytest.raises(LayoutError):
        device.write(Region.TREE, -1, 0)
    with pytest.raises(LayoutError):
        device.poke(Region.BITMAP, 99, 0)


def test_mutable_values_rejected(device):
    with pytest.raises(TypeError):
        device.write(Region.DATA, 0, [1, 2, 3])
    with pytest.raises(TypeError):
        device.write(Region.DATA, 0, {"a": 1})


def test_contents_survive_crash(device):
    device.write(Region.DATA, 1, 42)
    device.crash()
    assert device.read(Region.DATA, 1) == 42


def test_clone_restore_roundtrip(device):
    device.write(Region.DATA, 1, 11)
    snap = device.clone_store()
    device.write(Region.DATA, 1, 22)
    device.restore_store(snap)
    assert device.peek(Region.DATA, 1) == 11


def test_populated_iteration(device):
    device.poke(Region.TREE, 3, "a")
    device.poke(Region.TREE, 7, "b")
    device.poke(Region.DATA, 1, "c")
    assert dict(device.populated(Region.TREE)) == {3: "a", 7: "b"}
    assert device.populated_count(Region.TREE) == 2


def test_occupancy(device):
    assert device.occupancy_bytes() == 0
    device.poke(Region.DATA, 0, 1)
    assert device.occupancy_bytes() == 64
    assert len(device) == 1


def test_layout_region_math():
    layout = build_layout(data_lines=1024, tree_lines=256,
                          metadata_cache_lines=64)
    # 64 cache lines -> 64 records -> 4 record lines of 16 entries
    assert layout.record_lines == 4
    assert layout.data_mac_lines == 128
    assert layout.region_bytes(Region.TREE) == 256 * 64
    # flat addressing: regions do not overlap
    ends = []
    base = 0
    for region in Region:
        assert layout.region_base(region) == base
        base += layout.region_lines(region)
        ends.append(base)
    assert sorted(ends) == ends


def test_global_line_checks_range():
    layout = build_layout(data_lines=10, tree_lines=10,
                          metadata_cache_lines=16)
    assert layout.global_line(Region.DATA, 0) == 0
    with pytest.raises(LayoutError):
        layout.global_line(Region.DATA, 10)
