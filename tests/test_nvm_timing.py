"""PCM timing model: row buffer, posted writes, queue back-pressure.

The model runs on integer picoseconds; equality assertions are exact.
"""
import pytest

from repro.common.config import NVMTimingConfig
from repro.nvm.timing import NVMTimingModel, RowBufferModel


def make_model(**kwargs) -> NVMTimingModel:
    return NVMTimingModel(NVMTimingConfig(**kwargs))


def test_read_row_miss_then_hit():
    m = make_model()
    done1 = m.read(0, row=5)
    assert done1 == 63_000            # tRCD + tCL = 63 ns
    done2 = m.read(done1, row=5)
    assert done2 - done1 == 15_000    # open-row hit
    assert m.stats.row_misses == 1
    assert m.stats.row_hits == 1


def test_completion_times_are_exact_ints():
    m = make_model()
    done = m.read(0, row=1)
    assert isinstance(done, int)
    free, done_w = m.write(done, row=2)
    assert isinstance(free, int) and isinstance(done_w, int)
    assert isinstance(m.stats.read_latency_ps, int)
    assert isinstance(m.stats.write_latency_ps, int)


def test_row_buffer_capacity_evicts_lru():
    rb = RowBufferModel(NVMTimingConfig(row_buffer_rows=2))
    assert not rb.access(1)
    assert not rb.access(2)
    assert rb.access(1)       # still open
    assert not rb.access(3)   # evicts 2 (LRU)
    assert not rb.access(2)


def test_posted_write_does_not_stall():
    m = make_model()
    issuer_free, done = m.write(0, row=1)
    assert issuer_free == 0
    assert done == 300_000            # tWR = 300 ns


def test_write_queue_backpressure():
    m = make_model(write_queue_entries=2, bank_parallelism=1)
    m.write(0, row=1)
    m.write(0, row=2)
    issuer_free, _ = m.write(0, row=3)   # queue full -> stall
    assert issuer_free > 0
    assert m.stats.write_stall_ps > 0
    assert m.stats.write_stall_ns > 0.0


def test_bank_parallelism_shortens_channel_occupancy():
    serial = make_model(bank_parallelism=1)
    banked = make_model(bank_parallelism=8)
    for m in (serial, banked):
        m.write(0, row=1)
        m.write(0, row=2)
    # a read arriving right after two writes waits much less with banks
    t_serial = serial.read(0, row=9)
    t_banked = banked.read(0, row=9)
    assert t_banked < t_serial


def test_reads_wait_for_device():
    m = make_model(bank_parallelism=1)
    m.write(0, row=1)   # occupies device 300 ns
    done = m.read(0, row=2)
    assert done >= 300_000


def test_queue_drains_over_time():
    m = make_model(write_queue_entries=4)
    for _ in range(4):
        m.write(0, row=1)
    assert m.queue_depth == 4
    m.write(10_000_000, row=1)   # far future: all retired
    assert m.queue_depth == 1


def test_drain_all():
    m = make_model()
    m.write(0, row=1)
    m.write(0, row=2)
    done = m.drain_all()
    assert m.queue_depth == 0
    assert done > 0


def test_reset():
    m = make_model()
    m.write(0, row=1)
    m.read(100_000, row=2)
    m.reset()
    assert m.queue_depth == 0
    assert m.stats.read_count == 0
    assert m.read(0, row=2) == 63_000


def test_latency_stats_accumulate():
    m = make_model()
    m.read(0, row=1)
    m.read(100_000, row=50_000)
    assert m.stats.read_count == 2
    assert m.stats.avg_read_ns > 0
    m.write(1_000_000, row=1)   # device idle by then
    assert m.stats.avg_write_ns == pytest.approx(300.0)
