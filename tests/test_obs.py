"""The observability layer: tracer, metrics, exporters, CLI, and the
observer-only guarantee (tracing never changes simulation results)."""
import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.obs import (
    EV_MC_HIT,
    EV_NVM_READ,
    EV_NVM_WRITE,
    EV_RECOVERY_STEP,
    EVENT_SCHEMA,
    LATENCY_BOUNDS_NS,
    NULL_TRACER,
    MetricRegistry,
    Tracer,
    chrome_trace,
    metrics_json,
    system_registry,
    validate_chrome_trace,
    validate_metrics,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.sim.runner import RunSpec, make_system, run_cell


# ------------------------------------------------------------------ tracer
class TestTracer:
    def test_emit_records_typed_events(self):
        tr = Tracer()
        tr.emit(EV_NVM_READ, ts_ns=100.0, dur_ns=50.0,
                region="data", index=3, row_hit=True)
        tr.emit(EV_MC_HIT, ts_ns=120.0, offset=64)
        assert len(tr) == 2
        ev = tr.events()[0]
        assert ev.kind == EV_NVM_READ
        assert ev.ts_ns == 100.0 and ev.dur_ns == 50.0
        assert ev.args == {"region": "data", "index": 3, "row_hit": True}
        assert tr.counts_by_kind() == {EV_MC_HIT: 1, EV_NVM_READ: 1}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown trace event kind"):
            Tracer().emit("nvm.refresh")

    def test_undeclared_field_rejected(self):
        with pytest.raises(ConfigError, match="does not declare"):
            Tracer().emit(EV_NVM_READ, region="data", index=1,
                          row_hti=True)

    def test_disabled_tracer_is_a_noop(self):
        tr = Tracer(enabled=False)
        # even an invalid emission is silently ignored when disabled:
        # the guard precedes validation, matching the hot-path contract
        tr.emit("not.a.kind", bogus=1)
        assert len(tr) == 0 and tr.dropped == 0
        assert not NULL_TRACER.enabled and len(NULL_TRACER) == 0

    def test_ring_drops_oldest_and_counts(self):
        tr = Tracer(capacity=3)
        for i in range(5):
            tr.emit(EV_MC_HIT, ts_ns=float(i), offset=i)
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [e.args["offset"] for e in tr.events()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            Tracer(capacity=0)

    def test_null_tracer_never_binds_a_clock(self):
        class FakeClock:
            now = 42.0

        NULL_TRACER.bind_clock(FakeClock())
        assert NULL_TRACER.now() == 0.0

    def test_default_timestamp_comes_from_bound_clock(self):
        class FakeClock:
            now_ns = 777.0

        tr = Tracer()
        tr.bind_clock(FakeClock())
        tr.emit(EV_MC_HIT, offset=0)
        assert tr.events()[0].ts_ns == 777.0

    def test_clear_resets_everything(self):
        tr = Tracer(capacity=1)
        tr.emit(EV_MC_HIT, ts_ns=0.0, offset=0)
        tr.emit(EV_MC_HIT, ts_ns=1.0, offset=1)
        tr.metrics.counter("x").inc()
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0 and len(tr.metrics) == 0

    def test_schema_covers_every_subsystem(self):
        categories = {kind.split(".", 1)[0] for kind in EVENT_SCHEMA}
        assert categories == {"nvm", "metacache", "sit", "nvbuffer",
                              "adr", "recovery"}


# ----------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        reg.gauge("a.g").set(2.5)
        assert reg.counter("a.b").value == 5
        assert reg.gauge("a.g").value == 2.5
        with pytest.raises(ConfigError):
            reg.counter("a.b").inc(-1)

    def test_histogram_buckets_deterministically(self):
        reg = MetricRegistry()
        h = reg.histogram("lat")
        h.observe(10.0)       # <= 25 -> bucket 0
        h.observe(25.0)       # boundary values land in their bucket
        h.observe(1e9)        # overflow bucket
        assert h.bucket_counts[0] == 2
        assert h.bucket_counts[-1] == 1
        assert h.count == 3
        assert h.mean == pytest.approx((10.0 + 25.0 + 1e9) / 3)
        assert h.bounds == LATENCY_BOUNDS_NS

    def test_histogram_bounds_are_identity(self):
        reg = MetricRegistry()
        reg.histogram("lat")
        with pytest.raises(ConfigError, match="different bounds"):
            reg.histogram("lat", bounds=(1.0, 2.0))
        with pytest.raises(ConfigError):
            reg.histogram("bad", bounds=(2.0, 1.0))

    def test_window_series(self):
        reg = MetricRegistry()
        w = reg.window("traffic", window_ns=100.0)
        w.observe(50.0)
        w.observe(99.0)
        w.observe(250.0, n=3)
        assert w.dump()["series"] == [[0, 2], [2, 3]]
        with pytest.raises(ConfigError, match="different width"):
            reg.window("traffic", window_ns=200.0)

    def test_type_clash_and_bad_names_rejected(self):
        reg = MetricRegistry()
        reg.counter("a.b")
        with pytest.raises(ConfigError, match="is a counter"):
            reg.gauge("a.b")
        with pytest.raises(ConfigError, match="bad metric name"):
            reg.counter("Not.A.Name")

    def test_absorb_rejects_clashes(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("x").inc()
        b.counter("y").inc(2)
        a.absorb(b)
        assert a.names() == ["x", "y"]
        c = MetricRegistry()
        c.counter("x")
        with pytest.raises(ConfigError, match="both registries"):
            a.absorb(c)

    def test_dump_is_name_sorted(self):
        reg = MetricRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.as_dict()) == ["a", "z"]


# --------------------------------------------------------------- exporters
def traced_run(recover: bool = False) -> tuple[Tracer, object]:
    tracer = Tracer()
    spec = RunSpec("steins-gc", "pers_hash", accesses=1500,
                   footprint_blocks=2048)
    system = make_system(spec.variant, tracer=tracer)
    from repro.workloads import get_profile

    profile = get_profile(spec.workload)
    trace = profile.generate(spec.seed, spec.accesses,
                             spec.footprint_blocks)
    from repro.sim.runner import run_trace

    run_trace(system, trace, spec.workload,
              flush_writes=profile.persistent)
    if recover:
        system.crash()
        system.recover()
    return tracer, system


class TestExporters:
    def test_chrome_trace_span_semantics(self):
        tr = Tracer()
        tr.emit(EV_NVM_WRITE, ts_ns=500.0, dur_ns=100.0,
                region="data", index=0, stalled=False)
        tr.emit(EV_MC_HIT, ts_ns=600.0, offset=0)
        doc = chrome_trace(tr, label="unit")
        span = next(e for e in doc["traceEvents"]
                    if e.get("name") == EV_NVM_WRITE)
        # the tracer stamps completion; "X" spans give their start
        assert span["ph"] == "X"
        assert span["ts"] == pytest.approx(0.4)   # (500-100) ns in us
        assert span["dur"] == pytest.approx(0.1)
        instant = next(e for e in doc["traceEvents"]
                       if e.get("name") == EV_MC_HIT)
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert validate_chrome_trace(doc) == []

    def test_traced_system_run_validates(self, tmp_path):
        tracer, system = traced_run(recover=True)
        kinds = set(tracer.counts_by_kind())
        assert EV_NVM_READ in kinds and EV_NVM_WRITE in kinds
        assert EV_RECOVERY_STEP in kinds
        registry = system_registry(system, tracer)
        trace_doc = chrome_trace(tracer)
        metrics_doc = metrics_json(registry, tracer)
        assert validate_chrome_trace(trace_doc) == []
        assert validate_metrics(metrics_doc) == []
        # the registry agrees with the stats facade it mirrors
        assert registry.counter("ctrl.data_reads").value \
            == system.controller.stats.data_reads
        assert registry.counter("metacache.hits").value \
            == system.controller.metacache.stats.hits

    def test_written_artifacts_round_trip(self, tmp_path):
        tracer, system = traced_run()
        registry = system_registry(system, tracer)
        tp = tmp_path / "trace.json"
        mp = tmp_path / "metrics.json"
        cp = tmp_path / "metrics.csv"
        write_chrome_trace(str(tp), tracer)
        write_metrics_json(str(mp), registry, tracer)
        write_metrics_csv(str(cp), registry)
        assert validate_chrome_trace(json.loads(tp.read_text())) == []
        mdoc = json.loads(mp.read_text())
        assert validate_metrics(mdoc) == []
        assert mdoc["events"]["retained"] == len(tracer)
        header, *rows = cp.read_text().strip().splitlines()
        assert header == "name,type,value,detail"
        assert len(rows) == len(registry)

    def test_validators_catch_malformed_documents(self):
        assert validate_chrome_trace({"nope": []}) != []
        bad_event = {"traceEvents": [
            {"name": "nvm.read", "ph": "X", "pid": 1, "tid": 1,
             "ts": -1.0, "args": {"bogus": 1}},
        ]}
        problems = validate_chrome_trace(bad_event)
        assert any("bad 'ts'" in p for p in problems)
        assert any("without numeric 'dur'" in p for p in problems)
        assert any("undeclared fields" in p for p in problems)
        assert validate_metrics({"schema": "wrong", "metrics": {}}) != []
        broken_hist = {
            "schema": "repro.obs.metrics/1",
            "metrics": {"h": {"type": "histogram", "bounds": [1.0],
                              "bucket_counts": [1], "count": 1,
                              "total": 1.0}},
        }
        assert any("mismatch" in p
                   for p in validate_metrics(broken_hist))


# ------------------------------------------------- observer-only guarantee
class TestObserverOnly:
    def test_traced_result_identical_to_untraced(self):
        spec = RunSpec("steins-gc", "pers_hash", accesses=1500,
                       footprint_blocks=2048)
        plain = run_cell(spec)
        traced = run_cell(spec, tracer=Tracer())
        assert traced.to_json() == plain.to_json()

    def test_tracer_absent_from_cell_spec(self):
        """The exec cache key must never see the tracer."""
        from dataclasses import fields

        from repro.exec.spec import CellSpec

        assert "tracer" not in {f.name for f in fields(CellSpec)}
        assert "tracer" not in {f.name for f in fields(RunSpec)}


# --------------------------------------------------------------------- CLI
class TestTraceCli:
    def test_trace_subcommand_writes_valid_artifacts(self, tmp_path,
                                                     capsys):
        out = tmp_path / "out"
        assert main(["trace", "steins-gc", "pers_hash",
                     "--accesses", "1500", "--footprint", "2048",
                     "--small", "--recover", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "events retained" in printed
        trace_doc = json.loads((out / "trace.json").read_text())
        metrics_doc = json.loads((out / "metrics.json").read_text())
        assert validate_chrome_trace(trace_doc) == []
        assert validate_metrics(metrics_doc) == []
        assert (out / "metrics.csv").exists()

    def test_recover_rejected_for_nonrecovery_variant(self, tmp_path,
                                                      capsys):
        assert main(["trace", "wb-gc", "pers_hash",
                     "--accesses", "100", "--footprint", "256",
                     "--recover", "--out", str(tmp_path / "o")]) == 2
        assert "does not support recovery" in capsys.readouterr().err
