"""Differential harness unit tests (repro.oracle.harness).

Each case runner is exercised directly on short traces: clean runs must
match, targeted crashes must recover and match, staged tampers must be
loud, and a deliberately lying controller must produce a divergence —
proving the harness can actually fail.
"""
import numpy as np
import pytest

from repro.common.config import small_config
from repro.common.errors import RecoveryError
from repro.oracle.harness import (
    TAMPER_KINDS,
    DifferentialRun,
    Divergence,
    OracleCase,
    OracleCaseResult,
    _straddling_target,
    run_clean_case,
    run_crash_case,
    run_tamper_case,
)
from repro.workloads import get_profile
from repro.workloads.trace import TraceArrays


@pytest.fixture(scope="module")
def cfg():
    return small_config(metadata_cache_bytes=2048)


@pytest.fixture(scope="module")
def trace():
    return get_profile("pers_hash").generate(seed=2024, n=250,
                                             footprint=2048)


def make_trace(ops):
    """(is_write, addr) pairs -> a TraceArrays with zero gaps."""
    return TraceArrays(
        np.array([w for w, _ in ops], dtype=bool),
        np.array([a for _, a in ops], dtype=np.int64),
        np.zeros(len(ops), dtype=np.int32))


# ----------------------------------------------------------- round trips
def test_divergence_and_case_json_roundtrip():
    div = Divergence("read", "block 3", "1", "2")
    assert Divergence.from_json(div.to_json()) == div
    case = OracleCase("steins", "pers_hash", "controller.write", 7, 2)
    assert OracleCase.from_json(case.to_json()) == case
    result = OracleCaseResult(
        scheme="steins", workload="pers_hash", outcome="diverged",
        crash_point="controller.write", crash_index=9,
        divergences=[div], detail="x")
    decoded = OracleCaseResult.from_json(result.to_json())
    assert decoded == result
    assert decoded.silent_divergence


# ------------------------------------------------------------ clean runs
@pytest.mark.parametrize("scheme", ["wb", "steins"])
def test_clean_case_matches(scheme, cfg, trace):
    result = run_clean_case(scheme, "pers_hash", trace, cfg)
    assert result.outcome == "match"
    assert result.divergences == []
    assert result.reads_checked > 0
    assert result.blocks_checked > 0


def test_lying_reads_diverge(cfg):
    """The harness must be able to fail: a controller that returns
    stale data produces read divergences, not a pass."""
    dr = DifferentialRun("steins", cfg)
    dr.write(3)
    truth = dr.model.read(3)
    dr.controller.read_data = lambda addr: truth + 1
    dr.read(3)
    dr.verify_end_state()
    kinds = {d.kind for d in dr.divergences}
    assert "read" in kinds and "readback" in kinds


def test_recovery_check_flags_root_rollback(cfg, trace):
    dr = DifferentialRun("steins", cfg)
    dr.run_trace(trace)
    dr.controller.flush_all()
    pre = dr.crash()
    dr.system.recover()
    # forge the snapshot so the live root looks like a regression
    bumped = dict(pre)
    bumped["root"] = [c + 1 for c in dr.controller.root.snapshot()]
    dr.check_recovery(bumped)
    assert any(d.kind == "root-regress" for d in dr.divergences)


# ----------------------------------------------------------- crash cases
def test_crash_case_recovers_and_matches(cfg, trace):
    case = OracleCase("steins", "pers_hash", "controller.write",
                      crash_after=5)
    result = run_crash_case(case, cfg, trace)
    assert result.outcome == "match"
    assert result.crash_point
    assert result.crash_index < len(trace)


def test_crash_case_on_wb_is_unsupported(cfg, trace):
    case = OracleCase("wb", "pers_hash", "controller.write",
                      crash_after=5)
    result = run_crash_case(case, cfg, trace)
    assert result.outcome == "unsupported"


def test_crash_beyond_fire_span_reports_no_crash(cfg, trace):
    case = OracleCase("steins", "pers_hash", "controller.write",
                      crash_after=10_000_000)
    result = run_crash_case(case, cfg, trace)
    assert result.outcome == "no_crash"


def test_crash_during_recovery_still_converges(cfg, trace):
    case = OracleCase("steins", "pers_hash", "recovery.step",
                      crash_after=40, recovery_crash_after=1)
    result = run_crash_case(case, cfg, trace)
    assert result.outcome == "match"
    assert result.recovery_crashed


# ---------------------------------------------------------- tamper cases
@pytest.mark.parametrize("kind", TAMPER_KINDS)
def test_tampers_are_loud_on_steins(kind, cfg, trace):
    result = run_tamper_case(kind, "steins", "pers_hash", trace, cfg)
    assert result.outcome == "detected", result.detail


def test_unknown_tamper_kind_rejected(cfg, trace):
    with pytest.raises(ValueError):
        run_tamper_case("voltage-glitch", "steins", "pers_hash", trace,
                        cfg)


def test_straddling_target_needs_a_block_in_both_halves():
    disjoint = make_trace([(True, 1), (True, 2), (True, 3), (True, 4)])
    with pytest.raises(RecoveryError):
        _straddling_target(disjoint, half=2)
    straddling = make_trace([(True, 1), (True, 2), (True, 2), (False, 1)])
    assert _straddling_target(straddling, half=2) == 2
