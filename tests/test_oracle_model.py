"""Unit tests of the pure reference model (repro.oracle.model).

The model is the trusted side of the differential harness, so its own
semantics are pinned exhaustively here — if these are wrong, every
conformance verdict is.
"""
import pytest

from repro.oracle.model import OracleViolation, ReferenceModel


def test_read_defaults_to_zero():
    assert ReferenceModel().read(123) == 0


def test_last_accepted_write_wins():
    model = ReferenceModel()
    model.write(5, 111)
    model.write(5, 222)
    model.write(9, 333)
    assert model.read(5) == 222
    assert model.read(9) == 333
    assert model.write_counts == {5: 2, 9: 1}


def test_counter_observations_must_strictly_increase():
    model = ReferenceModel()
    model.observe_counter(4, 1)
    model.observe_counter(4, 2)
    model.observe_counter(7, 1)      # other addresses are independent
    with pytest.raises(OracleViolation):
        model.observe_counter(4, 2)  # repeat = OTP reuse
    with pytest.raises(OracleViolation):
        model.observe_counter(4, 1)  # regression


def test_crash_preserves_contents_and_counts_epochs():
    model = ReferenceModel()
    model.write(1, 10)
    digest = model.digest()
    model.crash()
    assert model.read(1) == 10
    assert model.crashes == 1
    assert model.digest() == digest   # crash is not a semantic event


def test_digest_tracks_contents_and_write_counts():
    a, b = ReferenceModel(), ReferenceModel()
    a.write(1, 10)
    b.write(1, 10)
    assert a.digest() == b.digest()
    # same final contents, different accepted-write history: distinct
    b.write(1, 99)
    b.write(1, 10)
    assert a.digest() != b.digest()


def test_snapshot_is_independent():
    model = ReferenceModel()
    model.write(1, 10)
    model.observe_counter(1, 3)
    snap = model.snapshot()
    model.write(1, 20)
    model.observe_counter(1, 4)
    assert snap.read(1) == 10
    assert snap.counters == {1: 3}
    assert model.read(1) == 20
