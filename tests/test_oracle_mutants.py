"""The oracle's self-test: every seeded mutant must be caught.

``run_mutant_case`` plants one representative bug per claimed detection
class; an outcome of ``match`` would mean the differential oracle
passes a controller with a known bug — the one result these tests
forbid, on every scheme each mutant declares.
"""
import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.oracle.mutants import MUTANTS, run_mutant_case
from repro.sim.system import SCHEMES
from repro.workloads import get_profile

CASES = [(name, scheme) for name, m in sorted(MUTANTS.items())
         for scheme in m.schemes]


@pytest.fixture(scope="module")
def cfg():
    return small_config(metadata_cache_bytes=2048)


@pytest.fixture(scope="module")
def trace():
    return get_profile("pers_hash").generate(seed=2024, n=250,
                                             footprint=2048)


def test_registry_is_well_formed():
    for name, mutant in MUTANTS.items():
        assert mutant.name == name
        assert mutant.description and mutant.catches
        assert mutant.schemes, f"{name} asserts nothing"
        assert set(mutant.schemes) <= set(SCHEMES)


@pytest.mark.parametrize("name,scheme", CASES)
def test_every_mutant_is_caught(name, scheme, cfg, trace):
    result = run_mutant_case(name, scheme, "pers_hash", trace, cfg)
    assert result.outcome != "match", (
        f"mutant {name!r} escaped the oracle on {scheme}")


def test_unpatched_controller_still_matches(cfg, trace):
    """The self-test's control arm: with no mutant the same flow passes,
    so the catches above are attributable to the planted bugs."""
    from repro.oracle.harness import run_clean_case
    result = run_clean_case("steins", "pers_hash", trace, cfg)
    assert result.outcome == "match"


def test_unknown_mutant_rejected(cfg, trace):
    with pytest.raises(ConfigError):
        run_mutant_case("off-by-one-everywhere", "steins", "pers_hash",
                        trace, cfg)
