"""Suite planning and execution (repro.oracle.sweep).

Planning is pure and pinned here case by case; execution is covered by
one small end-to-end suite run through repro.exec with a cache, which
must be clean on first contact and fully cached on the second.
"""
import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.exec.cache import ResultCache
from repro.oracle.harness import OracleCaseResult
from repro.oracle.mutants import MUTANTS
from repro.oracle.sweep import (
    SuiteSummary,
    build_suite,
    crash_plans_from_log,
    mutant_plans_for,
    probe_fire_log,
    run_oracle_cell,
    run_oracle_suite,
    tamper_plans_for,
)
from repro.workloads import get_profile


@pytest.fixture(scope="module")
def cfg():
    return small_config(metadata_cache_bytes=2048)


@pytest.fixture(scope="module")
def trace():
    return get_profile("pers_hash").generate(seed=2024, n=250,
                                             footprint=2048)


# -------------------------------------------------------------- planning
def test_probe_fire_log_orders_runtime_fires(cfg, trace):
    log = probe_fire_log("steins", cfg, trace)
    assert log, "a write-heavy trace must fire injection points"
    assert "controller.write" in log
    # the probe is deterministic: same trace, same log
    assert log == probe_fire_log("steins", cfg, trace)


def test_crash_plans_pick_first_middle_last():
    log = ["a", "b", "a", "a"]
    plans = crash_plans_from_log(log, recovery_doses=(1,))
    aimed = {(p["point"], p["crash_after"]) for p in plans
             if "recovery_crash_after" not in p}
    assert aimed == {("a", 1), ("a", 3), ("a", 4), ("b", 2)}
    recovery = [p for p in plans if p.get("recovery_crash_after")]
    assert recovery == [{"mode": "crash", "point": "recovery.step",
                         "crash_after": 3, "recovery_crash_after": 1}]


def test_crash_plans_empty_log_plans_nothing():
    assert crash_plans_from_log([]) == []


def test_tamper_plans_respect_recovery_support():
    steins = {p["attack"] for p in tamper_plans_for("steins")}
    wb = {p["attack"] for p in tamper_plans_for("wb")}
    assert "tree-counter" in steins and "tree-replay" in steins
    assert wb == steins - {"tree-counter", "tree-replay"}


def test_mutant_plans_follow_the_registry():
    for scheme in ("wb", "steins"):
        names = {p["mutant"] for p in mutant_plans_for(scheme)}
        assert names == {n for n, m in MUTANTS.items()
                         if scheme in m.schemes}


def test_build_suite_covers_all_modes(cfg):
    specs = build_suite(["steins"], ["pers_hash"], accesses=250,
                        footprint=2048, seed=2024, cfg=cfg)
    modes = {s.fault["mode"] for s in specs}
    assert modes == {"clean", "crash", "tamper", "mutant"}
    assert all(s.kind == "oracle" for s in specs)


def test_run_oracle_cell_rejects_unknown_mode(cfg, trace):
    with pytest.raises(ConfigError):
        run_oracle_cell("steins", "pers_hash", {"mode": "psychic"}, cfg,
                        trace)


# --------------------------------------------------------------- tallies
def fake(outcome):
    return OracleCaseResult(scheme="s", workload="w", outcome=outcome)


def spec_with(plan, cfg):
    specs = build_suite(["steins"], ["pers_hash"], 250, 2048, 2024, cfg)
    return next(s for s in specs if s.fault["mode"] == plan)


def test_summary_acceptance_bar(cfg):
    tally = SuiteSummary(schemes=["steins"], workloads=["pers_hash"])
    tally.add(spec_with("clean", cfg), fake("match"), cached=False)
    tally.add(spec_with("tamper", cfg), fake("neutralized"), cached=True)
    tally.add(spec_with("mutant", cfg), fake("detected"), cached=False)
    assert tally.ok and not tally.failures
    assert (tally.cells_executed, tally.cells_cached) == (2, 1)
    # a crash-mode divergence is both a failure and a *silent* one
    tally.add(spec_with("crash", cfg), fake("diverged"), cached=False)
    # an escaped mutant fails without being a silent divergence
    tally.add(spec_with("mutant", cfg), fake("match"), cached=False)
    assert not tally.ok
    assert len(tally.failures) == 2
    assert len(tally.silent_divergences) == 1
    assert tally.to_json()["ok"] is False
    assert any(line.startswith("FAIL") for line in tally.summary_lines())


# ------------------------------------------------------------ end to end
@pytest.mark.slow
def test_small_suite_is_clean_then_fully_cached(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    kwargs = dict(schemes=["steins"], accesses=250, footprint=2048,
                  seed=2024, jobs=1, cache=cache)
    first = run_oracle_suite(**kwargs)
    assert first.ok, first.summary_lines()
    assert first.cells_executed > 0 and first.cells_cached == 0
    second = run_oracle_suite(**kwargs)
    assert second.ok
    assert second.cells_executed == 0
    assert second.cells_cached == len(second.cases)
    assert second.outcome_counts == first.outcome_counts
