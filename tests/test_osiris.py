"""Osiris-style leaf recovery (paper Sec. V alternative)."""
from dataclasses import replace

import pytest

from repro.common.config import ConfigError, CounterMode, small_config
from repro.common.errors import TamperDetectedError
from repro.common.rng import make_rng
from repro.core.controller import SteinsController
from repro.nvm.device import NVMDevice
from repro.nvm.energy import EnergyMeter
from repro.nvm.layout import Region
from repro.sim.clock import MemClock
from repro.sim.system import make_layout
from tests.test_steins_controller import assert_linc_invariant


def osiris_rig(stop_loss=4, cache_bytes=2048):
    cfg = small_config(metadata_cache_bytes=cache_bytes)
    cfg = replace(cfg, security=replace(
        cfg.security, leaf_recovery="osiris",
        osiris_stop_loss=stop_loss))
    device = NVMDevice(make_layout(cfg))
    clock = MemClock(cfg, device, EnergyMeter(cfg.energy))
    return SteinsController(cfg, device, clock), device, clock


def test_config_rejects_osiris_with_split_counters():
    cfg = small_config(CounterMode.SPLIT)
    with pytest.raises(ConfigError, match="Osiris"):
        replace(cfg.security, leaf_recovery="osiris")


def test_config_rejects_unknown_strategy():
    cfg = small_config()
    with pytest.raises(ConfigError):
        replace(cfg.security, leaf_recovery="bogus")
    with pytest.raises(ConfigError):
        replace(cfg.security, leaf_recovery="osiris", osiris_stop_loss=0)


def test_stop_loss_bounds_drift():
    controller, device, _ = osiris_rig(stop_loss=3)
    for i in range(10):
        controller.write_data(0, i)
    # after every 3rd increment the leaf was persisted
    assert controller.stats.extra.get("osiris_stop_loss_writes", 0) >= 3
    leaf_offset = controller.geometry.node_offset(0, 0)
    from repro.integrity.node import SITNode
    stale = SITNode.from_snapshot(device.peek(Region.TREE, leaf_offset))
    cached = controller.metacache.peek(leaf_offset)
    assert cached.gensum() - stale.gensum() < 3


def test_recovery_without_echoes():
    controller, _, _ = osiris_rig()
    rng = make_rng(71, "osiris")
    written = {}
    for addr in rng.integers(0, 2000, 250):
        controller.write_data(int(addr), int(addr) * 5 + 1)
        written[int(addr)] = int(addr) * 5 + 1
    controller.crash()
    report = controller.recover()
    assert report.detail.get("osiris_trials", 0) > 0
    for addr, value in written.items():
        assert controller.read_data(addr) == value
    assert_linc_invariant(controller)


def test_recovery_detects_tampered_data():
    controller, device, _ = osiris_rig()
    controller.write_data(5, 99)
    controller.write_data(6, 98)   # keep the leaf dirty
    controller.crash()
    tag, cipher, hmac, echo = device.peek(Region.DATA, 5)
    device.poke(Region.DATA, 5, (tag, cipher ^ 1, hmac, echo))
    with pytest.raises(TamperDetectedError, match="stop-loss|tamper"):
        controller.recover()


def test_recovery_detects_replayed_data():
    """A replayed data version outside the stop-loss window cannot
    verify; inside the window it yields a smaller counter and trips the
    L0Inc check."""
    from repro.attacks import AttackInjector
    controller, device, _ = osiris_rig(stop_loss=8)
    injector = AttackInjector(device)
    controller.write_data(5, 1)
    injector.record(Region.DATA, 5)
    controller.write_data(5, 2)    # counter advances, leaf still dirty
    controller.crash()
    injector.replay(Region.DATA, 5)
    from repro.common.errors import IntegrityError
    with pytest.raises(IntegrityError):
        controller.recover()


def test_osiris_runtime_write_amplification():
    """The trade-off: Osiris persists leaves every N writes."""
    from tests.test_steins_controller import steins_rig

    echo_ctrl, echo_dev, _ = steins_rig(cache_bytes=2048)
    osiris_ctrl, osiris_dev, _ = osiris_rig(stop_loss=4)
    rng = make_rng(72, "amp")
    addrs = [int(a) for a in rng.integers(0, 64, 300)]  # hot leaves
    for addr in addrs:
        echo_ctrl.write_data(addr, 1)
        osiris_ctrl.write_data(addr, 1)
    assert osiris_dev.stats.writes[Region.TREE] > \
        echo_dev.stats.writes[Region.TREE]


def test_recover_counter_window():
    from repro.baselines.report import RecoveryReport
    from repro.core import osiris
    from repro.crypto import cme
    from repro.crypto.engine import make_engine

    engine = make_engine(0xAB)
    plaintext = 777
    counter = 6
    cipher = cme.encrypt_block(engine, 9, counter, plaintext)
    hmac = cme.data_hmac(engine, 9, counter, plaintext)
    value = ("data", cipher, hmac, counter)
    report = RecoveryReport("steins")
    found = osiris.recover_counter(engine, 9, value, stale_counter=3,
                                   stop_loss=4, report=report)
    assert found == 6
    assert report.detail["osiris_trials"] == 4
    with pytest.raises(TamperDetectedError):
        osiris.recover_counter(engine, 9, value, stale_counter=3,
                               stop_loss=2, report=report)
