"""Property-based end-to-end tests of ASIT and STAR (hypothesis).

Random operation sequences — writes, reads, crash+recover — must keep
data round-tripping and the verification closure intact, mirroring the
Steins property suite so every recoverable scheme gets the same
adversarial treatment.
"""
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.consistency import check_verification_closure
from repro.baselines.asit import ASITController
from repro.baselines.star import STARController
from repro.common.config import CounterMode
from tests.conftest import scaled
from tests.test_controller_base import make_rig

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 1200),
                  st.integers(0, 1 << 32)),
        st.tuples(st.just("read"), st.integers(0, 1200), st.just(0)),
        st.tuples(st.just("crash"), st.just(0), st.just(0)),
    ),
    min_size=1, max_size=60)


@settings(max_examples=scaled(15), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops, st.sampled_from([ASITController, STARController]))
def test_random_ops_preserve_data_and_closure(sequence, cls):
    controller, _, _ = make_rig(CounterMode.GENERAL, cls,
                                metadata_cache_bytes=1024)
    shadow: dict[int, int] = {}
    for op, addr, value in sequence:
        if op == "write":
            controller.write_data(addr, value)
            shadow[addr] = value
        elif op == "read":
            assert controller.read_data(addr) == shadow.get(addr, 0)
        else:
            controller.crash()
            controller.recover()
    check_verification_closure(controller)
    for addr, value in shadow.items():
        assert controller.read_data(addr) == value


@settings(max_examples=scaled(10), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 3000), min_size=10, max_size=100),
       st.integers(1, 8),
       st.sampled_from([ASITController, STARController]))
def test_periodic_crashes(addrs, period, cls):
    controller, _, _ = make_rig(CounterMode.GENERAL, cls,
                                metadata_cache_bytes=1024)
    shadow = {}
    for i, addr in enumerate(addrs):
        controller.write_data(addr, i + 1)
        shadow[addr] = i + 1
        if i % period == period - 1:
            controller.crash()
            controller.recover()
    for addr, value in shadow.items():
        assert controller.read_data(addr) == value
