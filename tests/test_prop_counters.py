"""Property-based tests of the counter blocks (hypothesis).

The core safety property of Steins' counter generation (Sec. III-B):
under ANY write sequence, the generated parent counter is strictly
monotone for every increment — including across minor-counter overflows
with the skip update.
"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import constants as C
from repro.counters import GeneralCounterBlock, OverflowPolicy, SplitCounterBlock
from tests.conftest import scaled

slots_general = st.lists(st.integers(0, 7), min_size=1, max_size=200)
slots_split = st.lists(st.integers(0, 63), min_size=1, max_size=400)


@given(slots_general)
def test_general_gensum_strictly_monotone(writes):
    block = GeneralCounterBlock()
    prev = block.gensum()
    for slot in writes:
        result = block.increment(slot)
        assert block.gensum() == prev + result.gensum_delta
        assert block.gensum() > prev
        prev = block.gensum()


@given(slots_general)
def test_general_gensum_counts_writes(writes):
    block = GeneralCounterBlock()
    for slot in writes:
        block.increment(slot)
    assert block.gensum() == len(writes)


@settings(max_examples=scaled(60))
@given(slots_split)
def test_split_skip_gensum_strictly_monotone(writes):
    """The paper's central monotonicity claim for Eq. (2)."""
    block = SplitCounterBlock(policy=OverflowPolicy.SKIP)
    prev = block.gensum()
    for slot in writes:
        result = block.increment(slot)
        assert block.gensum() > prev
        assert block.gensum() - prev == result.gensum_delta
        if result.minor_overflow:
            # skip update aligns upward to a multiple of 2^6
            assert block.gensum() % C.SPLIT_MAJOR_WEIGHT == 0
        prev = block.gensum()


@settings(max_examples=scaled(60))
@given(slots_split)
def test_split_encryption_counters_never_repeat(writes):
    """CME safety: the (major, minor) pair used to encrypt a block never
    repeats across that block's writes (OTP uniqueness, Sec. II-B)."""
    block = SplitCounterBlock(policy=OverflowPolicy.SKIP)
    seen: dict[int, set[int]] = {}
    for slot in writes:
        block.increment(slot)
        counter = block.counter(slot)
        assert counter not in seen.setdefault(slot, set())
        seen[slot].add(counter)


@settings(max_examples=scaled(60))
@given(slots_split)
def test_split_skip_at_most_doubles_counter_use(writes):
    """Sec. III-B.2: the skip update consumes at most 2x the counter
    range of the write count (hence >= ~342 years to overflow)."""
    block = SplitCounterBlock(policy=OverflowPolicy.SKIP)
    for slot in writes:
        block.increment(slot)
    assert block.gensum() <= 2 * len(writes) + C.SPLIT_MAJOR_WEIGHT


@given(st.lists(st.integers(0, 7), min_size=0, max_size=50))
def test_general_pack_roundtrip(writes):
    block = GeneralCounterBlock()
    for slot in writes:
        block.increment(slot)
    assert GeneralCounterBlock.from_packed(block.to_packed()) == block
    assert GeneralCounterBlock.from_snapshot(block.snapshot()) == block


@settings(max_examples=scaled(40))
@given(st.integers(0, (1 << 64) - 1),
       st.lists(st.integers(0, 63), min_size=64, max_size=64))
def test_split_pack_roundtrip(major, minors):
    block = SplitCounterBlock(major, minors)
    assert SplitCounterBlock.from_packed(block.to_packed()) == block
    assert SplitCounterBlock.from_snapshot(block.snapshot()) == block


@settings(max_examples=scaled(40))
@given(slots_split)
def test_plain_vs_skip_major_never_smaller(writes):
    """The skip-updated major always dominates the plain one, so skip
    never under-counts relative to the conventional scheme."""
    plain = SplitCounterBlock(policy=OverflowPolicy.PLAIN)
    skip = SplitCounterBlock(policy=OverflowPolicy.SKIP)
    for slot in writes:
        plain.increment(slot)
        skip.increment(slot)
    assert skip.major >= plain.major
