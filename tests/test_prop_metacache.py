"""Model-based property tests of the metadata cache and record tracker.

Each test drives the real structure and a trivially-correct Python model
with the same random operation sequence and compares observable state —
the classic way to catch LRU/way-assignment/coalescing bugs.
"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, EnergyConfig, small_config
from repro.counters import GeneralCounterBlock
from repro.integrity.metacache import MetadataCache
from repro.integrity.node import SITNode
from repro.nvm.device import NVMDevice
from repro.nvm.energy import EnergyMeter
from repro.nvm.layout import build_layout
from repro.sim.clock import MemClock
from repro.core.tracking import OffsetRecordTracker
from tests.conftest import scaled

cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 40)),
        st.tuples(st.just("lookup"), st.integers(0, 40)),
        st.tuples(st.just("dirty"), st.integers(0, 40)),
        st.tuples(st.just("remove"), st.integers(0, 40)),
    ),
    min_size=1, max_size=120)


@settings(max_examples=scaled(60))
@given(cache_ops)
def test_metacache_against_model(ops):
    cache = MetadataCache(CacheConfig(8 * 64, 2))   # 4 sets x 2 ways
    # model: per set, an ordered list of (offset, dirty)
    model: dict[int, list[list]] = {s: [] for s in range(cache.num_sets)}

    def set_of(off):
        return off % cache.num_sets

    for op, off in ops:
        entry_list = model[set_of(off)]
        found = next((e for e in entry_list if e[0] == off), None)
        if op == "insert":
            if found is not None:
                continue  # the real structure rejects duplicates
            victim = cache.insert(off, SITNode(0, off,
                                               GeneralCounterBlock()),
                                  dirty=False)
            if len(entry_list) >= cache.ways:
                expected_victim = entry_list.pop(0)
                assert victim is not None
                assert victim[0] == expected_victim[0]
                assert victim[2] == expected_victim[1]
            else:
                assert victim is None
            entry_list.append([off, False])
        elif op == "lookup":
            node = cache.lookup(off)
            if found is None:
                assert node is None
            else:
                assert node is not None and node.index == off
                entry_list.remove(found)
                entry_list.append(found)   # LRU touch
        elif op == "dirty":
            if found is not None:
                transitioned = cache.mark_dirty(off)
                assert transitioned == (not found[1])
                found[1] = True
        else:  # remove
            removed = cache.remove(off)
            assert (removed is not None) == (found is not None)
            if found is not None:
                entry_list.remove(found)
    # final state agrees
    for s, entries in model.items():
        real = {off for off, _, _ in cache.set_entries(s)}
        assert real == {off for off, _ in entries}
        for off, dirty in entries:
            assert cache.is_dirty(off) == dirty


record_ops = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 500)),
    min_size=1, max_size=150)


@settings(max_examples=scaled(40))
@given(record_ops)
def test_tracker_against_model(ops):
    """After any record sequence + crash flush, the persisted records
    equal the last offset written per slot."""
    cfg = small_config()
    device = NVMDevice(build_layout(1024, 600, 64))
    clock = MemClock(cfg, device, EnergyMeter(EnergyConfig()))
    tracker = OffsetRecordTracker(num_cache_slots=64, cache_lines=2,
                                  device=device)
    model: dict[int, int] = {}
    for slot, offset in ops:
        tracker.record(slot, offset, clock)
        model[slot] = offset
    tracker.flush_on_crash()
    offsets, _ = tracker.read_all_offsets(device)
    assert offsets == set(model.values())
