"""Property-based end-to-end tests of the Steins protocol (hypothesis).

Random operation sequences (writes, reads, flushes, crash+recover) must
preserve: data round-trips, the LInc invariant, and full verifiability.
These are the paper's correctness claims exercised adversarially.
"""
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import CounterMode
from repro.core.controller import SteinsController
from tests.conftest import scaled
from tests.test_controller_base import make_rig
from tests.test_steins_controller import assert_linc_invariant

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 1500),
                  st.integers(0, 1 << 32)),
        st.tuples(st.just("read"), st.integers(0, 1500), st.just(0)),
        st.tuples(st.just("crash"), st.just(0), st.just(0)),
    ),
    min_size=1, max_size=80)


@settings(max_examples=scaled(25), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops, st.sampled_from([CounterMode.GENERAL, CounterMode.SPLIT]))
def test_random_ops_preserve_all_invariants(sequence, mode):
    controller, device, _ = make_rig(mode, SteinsController,
                                     metadata_cache_bytes=1024)
    shadow: dict[int, int] = {}
    for op, addr, value in sequence:
        if op == "write":
            controller.write_data(addr, value)
            shadow[addr] = value
        elif op == "read":
            assert controller.read_data(addr) == shadow.get(addr, 0)
        else:
            controller.crash()
            controller.recover()
    # end state: everything verifies and matches the shadow model
    assert_linc_invariant(controller)
    for addr, value in shadow.items():
        assert controller.read_data(addr) == value


@settings(max_examples=scaled(15), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 4000), min_size=10, max_size=150),
       st.integers(0, 9))
def test_crash_anywhere_recovers(addrs, crash_mod):
    """Crash after every (crash_mod+1)-th write; data always survives."""
    controller, _, _ = make_rig(CounterMode.GENERAL, SteinsController,
                                metadata_cache_bytes=1024)
    shadow = {}
    for i, addr in enumerate(addrs):
        controller.write_data(addr, i + 1)
        shadow[addr] = i + 1
        if i % (crash_mod + 1) == crash_mod:
            controller.crash()
            controller.recover()
    for addr, value in shadow.items():
        assert controller.read_data(addr) == value
    assert_linc_invariant(controller)


@settings(max_examples=scaled(15), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 800), min_size=5, max_size=100))
def test_flush_all_then_cold_restart_equivalent(addrs):
    """flush_all + cache clear must be observationally identical to a
    crash + recovery for subsequent reads."""
    a, _, _ = make_rig(CounterMode.GENERAL, SteinsController, 1024)
    b, _, _ = make_rig(CounterMode.GENERAL, SteinsController, 1024)
    for i, addr in enumerate(addrs):
        a.write_data(addr, i)
        b.write_data(addr, i)
    a.flush_all()
    a.metacache.clear()
    b.crash()
    b.recover()
    for addr in sorted(set(addrs)):
        assert a.read_data(addr) == b.read_data(addr)


def test_flush_all_survives_nested_redirty_regression():
    """Regression (hypothesis-found): flush_all persisted a parent,
    then a nested NV-buffer drain (triggered by evictions inside the
    flush's own parent-update walk) applied a child's generated counter
    into that parent — and the loop's unconditional mark_clean erased
    the re-dirty, stranding the update in a clean cache entry NVM never
    saw.  A cold restart then verified the child against the stale
    persisted parent counter (HMAC mismatch).  flush_all now marks
    clean *before* flushing so nested re-dirtying survives."""
    addrs = [48, 176, 400, 776, 0, 8, 16, 24, 40, 56, 64, 360, 128,
             400, 768]
    a, _, _ = make_rig(CounterMode.GENERAL, SteinsController, 1024)
    b, _, _ = make_rig(CounterMode.GENERAL, SteinsController, 1024)
    for i, addr in enumerate(addrs):
        a.write_data(addr, i)
        b.write_data(addr, i)
    a.flush_all()
    a.metacache.clear()
    b.crash()
    b.recover()
    for addr in sorted(set(addrs)):
        assert a.read_data(addr) == b.read_data(addr)


def test_flush_all_uses_live_entry_after_midpass_refetch_regression():
    """Regression (hypothesis-found): flush_all iterated a snapshot of
    dirty (offset, node) pairs; mid-pass, a leaf flush's drain evicted
    the parent and re-fetched it as a *fresh* object that then absorbed
    the leaf's generated counter.  The loop later reached the stale
    snapshot pair, saw the offset dirty (the fresh entry's bit), and
    persisted the stale object — overwriting the applied counter in NVM
    while mark_clean erased the only dirty bit pointing at the live
    copy.  A cold restart then verified the leaf against the stale
    parent slot (HMAC mismatch).  flush_all now re-peeks the live cache
    entry before flushing."""
    addrs = [128, 192, 448, 680, 728, 8, 88, 768, 136, 0, 216, 320,
             200, 72, 8, 128, 616]
    a, _, _ = make_rig(CounterMode.GENERAL, SteinsController, 1024)
    b, _, _ = make_rig(CounterMode.GENERAL, SteinsController, 1024)
    for i, addr in enumerate(addrs):
        a.write_data(addr, i)
        b.write_data(addr, i)
    a.flush_all()
    a.metacache.clear()
    b.crash()
    b.recover()
    for addr in sorted(set(addrs)):
        assert a.read_data(addr) == b.read_data(addr)


@settings(max_examples=scaled(10), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 1200), min_size=5, max_size=60))
def test_repeated_recovery_converges_to_a_fixed_point(addrs):
    """Recovery is idempotent up to quiescence: reinstall evictions may
    flush children and park parent updates in the NV buffer, so one
    pass can legitimately advance durable state — but each pass must
    validate against its own pre-crash golden snapshot, and repeated
    crash+recover must reach a bit-identical fixed point once the
    buffered updates have migrated to the root (a few tree heights)."""
    from repro.common.config import small_config
    from repro.faults.campaign import controller_fingerprint
    from repro.sim.crash import capture_golden, check_recovered
    from repro.sim.system import SecureNVMSystem

    system = SecureNVMSystem(
        "steins", small_config(metadata_cache_bytes=1024), check=True)
    for addr in addrs:
        system.store(addr, flush=True)
    previous = None
    for _ in range(12):
        golden = capture_golden(system)
        system.crash()
        system.recover()
        check_recovered(system, golden)
        fingerprint = controller_fingerprint(system)
        if fingerprint == previous:
            break
        previous = fingerprint
    else:
        raise AssertionError("recovery never reached a fixed point")
