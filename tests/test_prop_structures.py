"""Property-based tests of caches, geometry, and bit packing."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitfield import pack_fields, unpack_fields
from repro.common.config import CacheConfig
from repro.integrity.geometry import TreeGeometry
from repro.mem.cache import SetAssocCache
from tests.conftest import scaled


@settings(max_examples=scaled(60))
@given(st.lists(st.tuples(st.integers(0, 200), st.booleans()),
                min_size=1, max_size=300))
def test_cache_capacity_and_residency(ops):
    """The cache never exceeds capacity, and the most recent key of a
    non-conflicting sequence is always resident."""
    cache = SetAssocCache(CacheConfig(8 * 64, 2))
    for key, dirty in ops:
        cache.access(key, dirty)
        assert len(cache) <= 8
        assert cache.contains(key)   # just-accessed key is resident


@settings(max_examples=scaled(60))
@given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
def test_cache_dirty_only_from_writes(keys):
    cache = SetAssocCache(CacheConfig(16 * 64, 4))
    for key in keys:
        cache.access(key, make_dirty=False)
    assert list(cache.dirty_keys()) == []


@settings(max_examples=scaled(40))
@given(st.integers(65, 1 << 20), st.sampled_from([8, 64]))
def test_geometry_offsets_bijective(num_blocks, coverage):
    g = TreeGeometry(num_data_blocks=num_blocks, leaf_coverage=coverage)
    # probe a sample of nodes at every level
    for level in range(g.num_levels):
        size = g.level_sizes[level]
        for index in sorted({0, size // 2, size - 1}):
            off = g.node_offset(level, index)
            assert g.offset_to_node(off) == (level, index)


@settings(max_examples=scaled(40))
@given(st.integers(65, 1 << 20), st.sampled_from([8, 64]),
       st.integers(0, 1 << 20))
def test_geometry_branch_consistency(num_blocks, coverage, raw_addr):
    g = TreeGeometry(num_data_blocks=num_blocks, leaf_coverage=coverage)
    addr = raw_addr % num_blocks
    branch = g.branch(addr)
    assert branch[-1][0] == g.top_level
    assert addr in g.leaf_data_blocks(branch[0][1])
    # parent slots address the right child everywhere
    for child, parent in zip(branch, branch[1:]):
        slot = g.parent_slot(*child)
        assert g.children(*parent)[slot] == child


@settings(max_examples=scaled(60))
@given(st.lists(st.integers(1, 64), min_size=1, max_size=10).flatmap(
    lambda widths: st.tuples(
        st.just(widths),
        st.tuples(*(st.integers(0, (1 << w) - 1) for w in widths)))))
def test_pack_unpack_roundtrip(widths_values):
    widths, values = widths_values
    packed = pack_fields(widths, list(values))
    assert unpack_fields(widths, packed) == list(values)
