"""ASIT and STAR crash recovery."""
import pytest

from repro.baselines.asit import ASITController
from repro.baselines.star import MultiLayerBitmap, STARController
from repro.common.config import CounterMode
from repro.common.errors import RecoveryError
from repro.common.rng import make_rng
from repro.nvm.layout import Region
from tests.test_controller_base import make_rig


def run_and_crash(controller, n_writes=250, span=3000, seed=31):
    rng = make_rng(seed, "baseline-crash")
    written = {}
    for addr in rng.integers(0, span, n_writes):
        value = int(addr) * 13 + 1
        controller.write_data(int(addr), value)
        written[int(addr)] = value
    golden = {off: node.snapshot()
              for off, node in controller.metacache.dirty_entries()}
    controller.crash()
    return written, golden


@pytest.mark.parametrize("cls", [ASITController, STARController])
def test_recover_restores_dirty_nodes(cls):
    controller, _, _ = make_rig(CounterMode.GENERAL, cls, 2048)
    written, golden = run_and_crash(controller)
    controller.recover()
    for offset, snap in golden.items():
        from repro.sim.crash import counters_dominate
        node = controller.metacache.peek(offset)
        if node is not None:
            assert controller.metacache.is_dirty(offset)
            assert counters_dominate(node.snapshot(), snap)
        else:
            found = controller.device.peek(Region.TREE, offset)
            assert found is not None, f"offset {offset} lost"
            assert counters_dominate(found, snap)


class TestCountersDominate:
    """Slot-wise domination must be exact, never vacuous."""

    @staticmethod
    def node(counters, level=0, index=0, kind="general"):
        return ("sitnode", level, index, (kind, counters), 0)

    def test_equal_and_advanced_dominate(self):
        from repro.sim.crash import counters_dominate
        g = self.node((1, 2, 3, 4))
        assert counters_dominate(self.node((1, 2, 3, 4)), g)
        assert counters_dominate(self.node((1, 2, 3, 5)), g)

    def test_regressed_slot_fails(self):
        from repro.sim.crash import counters_dominate
        g = self.node((1, 2, 3, 4))
        assert not counters_dominate(self.node((1, 2, 2, 4)), g)

    def test_mismatched_arity_fails_not_truncates(self):
        # the bug: zip() silently stopped at the shorter tuple, so a
        # malformed 2-slot block "dominated" an 8-slot golden vacuously
        from repro.sim.crash import counters_dominate
        golden = self.node((1, 1, 1, 1, 1, 1, 1, 1))
        found_short = self.node((9, 9))
        assert not counters_dominate(found_short, golden)
        # and the symmetric direction: wider found with regressed tail
        golden_short = self.node((9, 9))
        found_wide = self.node((9, 9, 0, 0))
        assert not counters_dominate(found_wide, golden_short)

    def test_kind_mismatch_fails(self):
        from repro.sim.crash import counters_dominate
        general = self.node((1, 1))
        split = ("sitnode", 0, 0, ("split", 1, (0, 0)), 0)
        assert not counters_dominate(general, split)

    def test_root_arity_mismatch_raises(self):
        # the sibling zip over root counters is strict: losing root
        # slots across recovery is a bug, not a shorter comparison
        from repro.sim.crash import GoldenState, check_recovered

        class FakeRoot:
            def snapshot(self):
                return (1, 1)

        class FakeCache:
            def dirty_entries(self):
                return []

            def peek(self, offset):
                return None

        class FakeController:
            root = FakeRoot()
            metacache = FakeCache()

        class FakeSystem:
            controller = FakeController()

        golden = GoldenState(root_counters=(1, 1, 1, 1))
        with pytest.raises(ValueError):
            check_recovered(FakeSystem(), golden)


@pytest.mark.parametrize("cls", [ASITController, STARController])
def test_data_readable_after_recovery(cls):
    controller, _, _ = make_rig(CounterMode.GENERAL, cls, 2048)
    written, _ = run_and_crash(controller)
    controller.recover()
    for addr, value in written.items():
        assert controller.read_data(addr) == value


@pytest.mark.parametrize("cls", [ASITController, STARController])
def test_recover_without_crash_rejected(cls):
    controller, _, _ = make_rig(CounterMode.GENERAL, cls)
    with pytest.raises(RecoveryError):
        controller.recover()


@pytest.mark.parametrize("cls", [ASITController, STARController])
def test_second_epoch_after_recovery(cls):
    controller, _, _ = make_rig(CounterMode.GENERAL, cls, 2048)
    written, _ = run_and_crash(controller)
    controller.recover()
    for addr in range(64):
        controller.write_data(addr, addr * 3)
        written[addr] = addr * 3
    controller.crash()
    controller.recover()
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_asit_shadow_write_per_modification():
    controller, device, _ = make_rig(CounterMode.GENERAL, ASITController)
    controller.write_data(0, 1)
    controller.write_data(1, 2)
    # every metadata modification shadows: >= one shadow write per data
    # write (the 2x traffic of Fig. 13)
    assert device.stats.writes[Region.SHADOW] >= 2
    assert controller.stats.extra["shadow_writes"] == \
        device.stats.writes[Region.SHADOW]


def test_asit_recovery_reads_whole_shadow_table():
    controller, _, _ = make_rig(CounterMode.GENERAL, ASITController)
    controller.write_data(0, 1)
    controller.crash()
    report = controller.recover()
    # one read per cache slot regardless of dirty count (its trade-off)
    assert report.nvm_reads >= controller.num_slots


def test_star_bitmap_tracks_transitions():
    controller, device, _ = make_rig(CounterMode.GENERAL, STARController)
    controller.write_data(0, 1)
    assert controller.stats.extra.get("bitmap_writes", 0) >= 1
    before = device.stats.writes[Region.BITMAP]
    controller.write_data(0, 2)  # already dirty: no transition
    assert device.stats.writes[Region.BITMAP] == before


def test_star_bitmap_scan_finds_dirty():
    controller, device, _ = make_rig(CounterMode.GENERAL, STARController)
    controller.write_data(0, 1)
    controller.write_data(100, 2)
    controller.crash()
    from repro.baselines.report import RecoveryReport
    offsets = controller.bitmap.scan_dirty(RecoveryReport("star"))
    dirty_leaves = {controller.geometry.node_offset(0, 0),
                    controller.geometry.node_offset(0, 12)}
    assert dirty_leaves <= offsets


def test_star_echo_embedded_in_persisted_nodes():
    controller, device, _ = make_rig(CounterMode.GENERAL, STARController,
                                     1024)
    rng = make_rng(5, "echo")
    for addr in rng.integers(0, 4000, 300):
        controller.write_data(int(addr), 1)
    controller.flush_all()
    from repro.integrity.node import SITNode
    found_echo = False
    for _, snap in device.populated(Region.TREE):
        echo = SITNode.snapshot_echo(snap)
        assert echo is not None
        found_echo = True
        node = SITNode.from_snapshot(snap)
        assert node.hmac_matches(controller.engine, echo)
    assert found_echo


def test_multilayer_bitmap_layers():
    from repro.nvm.device import NVMDevice
    from repro.nvm.layout import build_layout
    device = NVMDevice(build_layout(64, 64, 64, bitmap_lines=600))
    bm = MultiLayerBitmap(total_nodes=512 * 512 + 5, device=device)
    # 262149 bits -> 513 lines -> 2 summary lines -> 1 top line
    assert bm.layer_sizes == [513, 2, 1]
    assert bm.layer_bases == [0, 513, 515]


def test_multilayer_bitmap_terminates_single_line():
    from repro.nvm.device import NVMDevice
    from repro.nvm.layout import build_layout
    device = NVMDevice(build_layout(64, 64, 64, bitmap_lines=10))
    bm = MultiLayerBitmap(total_nodes=100, device=device)
    assert bm.layer_sizes == [1]


@pytest.mark.parametrize("scheme", ["asit", "star", "scue"])
def test_recovery_idempotent_fingerprint(scheme):
    """Recovery is a one-step fixed point for the baselines: a second
    crash+recover reproduces the first's state bit for bit.  (Steins
    converges over a few passes instead — its reinstall evictions park
    NV-buffer updates; see test_prop_steins.)"""
    from repro.common.config import small_config
    from repro.faults.campaign import controller_fingerprint
    from repro.sim.system import SecureNVMSystem

    system = SecureNVMSystem(
        scheme, small_config(metadata_cache_bytes=2048), check=True)
    rng = make_rng(23, "idem", scheme)
    for addr in rng.integers(0, 2000, 250):
        system.store(int(addr), flush=True)
    system.crash()
    system.recover()
    once = controller_fingerprint(system)
    system.crash()
    system.recover()
    assert controller_fingerprint(system) == once
