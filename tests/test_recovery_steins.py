"""Steins crash recovery (paper Sec. III-G, Fig. 8).

Golden rule under test: recovery restores every pre-crash dirty node
bit-exactly, marked dirty, with consistent LIncs — "Steins just recovers
the SIT nodes to the state before crashes".
"""
import pytest

from repro.common.config import CounterMode
from repro.common.rng import make_rng
from repro.nvm.layout import Region
from tests.test_steins_controller import assert_linc_invariant, steins_rig


def run_and_crash(controller, n_writes=300, span=4000, seed=21):
    rng = make_rng(seed, "crashwl")
    written = {}
    for addr in rng.integers(0, span, n_writes):
        value = int(addr) * 31 + 7
        controller.write_data(int(addr), value)
        written[int(addr)] = value
    golden = {off: node.snapshot()
              for off, node in controller.metacache.dirty_entries()}
    controller.crash()
    return written, golden


@pytest.mark.parametrize("mode", [CounterMode.GENERAL, CounterMode.SPLIT])
def test_recover_restores_dirty_nodes_exactly(mode):
    controller, _, _ = steins_rig(mode, cache_bytes=2048)
    written, golden = run_and_crash(controller)
    report = controller.recover()
    assert report.nodes_recovered >= len(golden)
    for offset, snap in golden.items():
        from repro.sim.crash import counters_dominate
        node = controller.metacache.peek(offset)
        if node is not None:
            # reinstall evictions of children may have advanced ancestors
            assert controller.metacache.is_dirty(offset)
            assert counters_dominate(node.snapshot(), snap)
        else:
            # reinstall pressure may flush a recovered node back out; its
            # later flushes only advance counters (monotonicity)
            found = controller.device.peek(Region.TREE, offset)
            assert found is not None, f"offset {offset} lost"
            assert counters_dominate(found, snap)


@pytest.mark.parametrize("mode", [CounterMode.GENERAL, CounterMode.SPLIT])
def test_data_readable_after_recovery(mode):
    controller, _, _ = steins_rig(mode, cache_bytes=2048)
    written, _ = run_and_crash(controller)
    controller.recover()
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_lincs_consistent_after_recovery():
    controller, _, _ = steins_rig(cache_bytes=2048)
    run_and_crash(controller)
    controller.recover()
    assert_linc_invariant(controller)


def test_system_usable_after_recovery():
    controller, _, _ = steins_rig(cache_bytes=2048)
    written, _ = run_and_crash(controller)
    controller.recover()
    # keep working: more writes, reads, a flush, and a second crash cycle
    for addr in range(100, 164):
        controller.write_data(addr, addr + 5)
        written[addr] = addr + 5
    controller.crash()
    controller.recover()
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_recovery_with_pending_nv_buffer():
    """Fig. 8 step 5: buffered parent updates are replayed at recovery."""
    controller, _, _ = steins_rig(cache_bytes=1024)
    rng = make_rng(23, "bufcrash")
    written = {}
    hits = 0
    for addr in rng.integers(0, 8000, 500):
        controller.write_data(int(addr), int(addr) + 1)
        written[int(addr)] = int(addr) + 1
        if len(controller.nv_buffer) > 0:
            hits += 1
    # the workload must actually exercise the buffer for this test
    assert hits > 0
    # crash at a moment with pending entries if possible
    controller.crash()
    report = controller.recover()
    assert_linc_invariant(controller)
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_recovery_with_forced_pending_entry():
    """Deterministic pending-buffer crash: evict a dirty leaf whose
    parent is uncached, then crash before any drain."""
    controller, device, _ = steins_rig(cache_bytes=1024)
    controller.write_data(0, 42)
    # flush everything, clear cache so parents are uncached
    controller.flush_all()
    controller.metacache.clear()
    # dirty one leaf then force its eviction via _install machinery;
    # drop its (clean) ancestors from the cache so the parent is uncached
    controller.write_data(0, 43)
    leaf_offset = controller.geometry.node_offset(0, 0)
    node = controller.metacache.peek(leaf_offset)
    controller.metacache.remove(leaf_offset)
    for ancestor in controller.geometry.branch(0)[1:]:
        controller.metacache.remove(
            controller.geometry.node_offset(*ancestor))
    controller._flush_dirty_node(node)   # parent uncached -> buffered
    assert len(controller.nv_buffer) == 1
    controller.crash()
    report = controller.recover()
    assert report.detail.get("buffer_replays", 0) == 1
    assert controller.read_data(0) == 43
    assert_linc_invariant(controller)


def test_clean_nodes_in_records_are_harmless():
    """Sec. III-H: stale records naming clean nodes do not break
    recovery (their computed increment is zero)."""
    controller, device, _ = steins_rig(cache_bytes=2048)
    written, golden = run_and_crash(controller, n_writes=30, span=240)
    # forge extra records pointing at clean persisted nodes
    from repro.attacks import AttackInjector
    injector = AttackInjector(device)
    clean_offsets = [off for off, _ in device.populated(Region.TREE)
                     if off not in golden][:3]
    for off in clean_offsets:
        injector.forge_offset_record(off)
    controller.recover()
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_empty_crash_recovers_trivially():
    controller, _, _ = steins_rig()
    controller.crash()
    report = controller.recover()
    assert report.nodes_recovered == 0
    controller.write_data(1, 2)
    assert controller.read_data(1) == 2


def test_double_recover_rejected():
    controller, _, _ = steins_rig()
    controller.write_data(0, 1)
    controller.crash()
    controller.recover()
    from repro.common.errors import RecoveryError
    with pytest.raises(RecoveryError):
        controller.recover()


def test_recovery_reads_scale_with_dirty_count():
    small, _, _ = steins_rig(cache_bytes=2048)
    run_and_crash(small, n_writes=50, span=400, seed=1)
    r_small = small.recover()
    big, _, _ = steins_rig(cache_bytes=2048)
    run_and_crash(big, n_writes=400, span=3200, seed=1)
    r_big = big.recover()
    assert r_big.nvm_reads > r_small.nvm_reads
    assert r_big.time_s > r_small.time_s


def test_small_dirty_set_recovers_bit_exactly():
    """With a dirty set far below capacity, reinstall never evicts and
    the recovered cache state is bit-identical to the golden snapshot."""
    controller, _, _ = steins_rig(cache_bytes=8 * 1024)
    written, golden = run_and_crash(controller, n_writes=40, span=128)
    controller.recover()
    for offset, snap in golden.items():
        node = controller.metacache.peek(offset)
        assert node is not None
        assert controller.metacache.is_dirty(offset)
        assert node.snapshot()[1:4] == snap[1:4]
