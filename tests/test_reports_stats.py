"""RecoveryReport accounting and RunResult statistics helpers."""
import pytest

from repro.baselines.report import READ_VERIFY_NS, RecoveryReport
from repro.sim.stats import RunResult, geometric_mean


class TestRecoveryReport:
    def test_time_follows_paper_methodology(self):
        """Sec. IV-D: 100 ns per metadata read-and-verify."""
        assert READ_VERIFY_NS == 100.0
        report = RecoveryReport("steins")
        report.read(650)
        assert report.time_ns == pytest.approx(65_000.0)
        assert report.time_s == pytest.approx(65e-6)

    def test_counters_accumulate(self):
        report = RecoveryReport("asit")
        report.read(3)
        report.write(2)
        report.hash(5)
        report.bump("record_lines", 4)
        report.bump("record_lines")
        d = report.as_dict()
        assert d["nvm_reads"] == 3
        assert d["nvm_writes"] == 2
        assert d["hashes"] == 5
        assert d["record_lines"] == 5
        assert d["scheme"] == "asit"

    def test_undeclared_detail_key_rejected(self):
        """bump() enforces the KNOWN_KEYS registry (simlint SL301's
        runtime twin): a typo'd key must fail loudly, not fork a new
        counter that no figure reads."""
        report = RecoveryReport("asit")
        with pytest.raises(ValueError, match="undeclared"):
            report.bump("record_lnies")


class TestRunResultStats:
    def make(self, **over) -> RunResult:
        base = dict(scheme="wb", workload="x", exec_time_ns=100.0,
                    data_reads=10, data_writes=5,
                    avg_read_latency_ns=50.0, avg_write_latency_ns=300.0,
                    nvm_write_traffic=20, nvm_read_traffic=30,
                    energy_nj=1000.0, metadata_cache_hit_rate=0.9)
        base.update(over)
        return RunResult(**base)

    def test_normalization_ratios(self):
        base = self.make()
        other = self.make(exec_time_ns=150.0, nvm_write_traffic=40)
        norm = other.normalized_to(base)
        assert norm["exec_time"] == pytest.approx(1.5)
        assert norm["write_traffic"] == pytest.approx(2.0)
        assert norm["energy"] == pytest.approx(1.0)

    def test_normalization_zero_base_is_none(self):
        """A zero-baseline metric has no ratio: it must surface as an
        explicit None (rendered '-', excluded from geomeans), never as a
        NaN that poisons downstream aggregation silently."""
        base = self.make(nvm_write_traffic=0)
        other = self.make(nvm_write_traffic=5)
        norm = other.normalized_to(base)
        assert norm["write_traffic"] is None
        # the other baselines are non-zero and still produce real ratios
        assert norm["exec_time"] == pytest.approx(1.0)

    def test_as_dict_namespaces_detail(self):
        """Detail keys export as detail.<key>, so a probe entry named
        like a core metric can never shadow it."""
        r = self.make(detail={"max_write_latency_ns": 900.0,
                              "energy_nj": 7.0})
        d = r.as_dict()
        assert d["detail.max_write_latency_ns"] == 900.0
        assert d["detail.energy_nj"] == 7.0
        assert d["energy_nj"] == 1000.0  # the real metric survives
        assert d["scheme"] == "wb"
        assert "max_write_latency_ns" not in d


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_order_invariant(self):
        a = geometric_mean([1.2, 3.4, 0.7, 9.9])
        b = geometric_mean([9.9, 0.7, 3.4, 1.2])
        assert a == pytest.approx(b)

    def test_no_overflow_on_long_extreme_sweeps(self):
        """Regression: the old running-product implementation hit
        inf/0.0 long before the final root; exp-of-mean-of-logs stays
        finite for 10k values at both float64 extremes."""
        big = [1e300] * 10_000
        assert geometric_mean(big) == pytest.approx(1e300, rel=1e-9)
        tiny = [1e-300] * 10_000
        assert geometric_mean(tiny) == pytest.approx(1e-300, rel=1e-9)
        mixed = [1e300, 1e-300] * 5_000
        assert geometric_mean(mixed) == pytest.approx(1.0, rel=1e-9)
