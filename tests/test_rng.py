"""Deterministic RNG and mixing primitives."""
import numpy as np
import pytest

from repro.common import rng


def test_splitmix_deterministic():
    s1, o1 = rng.splitmix64(12345)
    s2, o2 = rng.splitmix64(12345)
    assert (s1, o1) == (s2, o2)
    assert 0 <= o1 < (1 << 64)


def test_mix64_is_order_sensitive():
    assert rng.mix64(1, 2) != rng.mix64(2, 1)


def test_mix64_deterministic_and_64bit():
    v = rng.mix64(0xDEAD, 0xBEEF, 17)
    assert v == rng.mix64(0xDEAD, 0xBEEF, 17)
    assert 0 <= v < (1 << 64)


def test_mix64_handles_wide_values():
    wide = 1 << 200
    assert rng.mix64(wide) == rng.mix64(wide)
    assert rng.mix64(wide) != rng.mix64(wide + 1)


def test_mix_wide_rejects_negative():
    with pytest.raises(ValueError):
        rng.mix_wide(-1)


def test_derive_seed_tags_differentiate():
    base = 99
    assert rng.derive_seed(base, "a") != rng.derive_seed(base, "b")
    assert rng.derive_seed(base, 1, 2) != rng.derive_seed(base, 2, 1)


def test_make_rng_reproducible():
    a = rng.make_rng(5, "workload").integers(0, 1000, size=10)
    b = rng.make_rng(5, "workload").integers(0, 1000, size=10)
    assert np.array_equal(a, b)
    c = rng.make_rng(6, "workload").integers(0, 1000, size=10)
    assert not np.array_equal(a, c)
