"""Property tests: every result type survives a JSON round-trip losslessly.

The cache persists results as JSON, so ``from_json(to_json(x)) == x``
(after a real ``json.dumps``/``loads``, not just dict copying) is a
correctness requirement, not a convenience.  Inputs are fuzzed with a
seeded RNG so the property is exercised across many value shapes while
staying deterministic.
"""
import json
import math

import pytest

from repro.baselines.report import RecoveryReport
from repro.common.rng import make_rng
from repro.exec import CellSpec
from repro.faults.campaign import CampaignCase, CaseResult
from repro.sim.stats import RunResult

N_CASES = 50


def through_json(obj):
    """Encode to a real JSON string and back — catches types that only
    survive dict copying (tuples, numpy scalars, non-string keys)."""
    return json.loads(json.dumps(obj.to_json(), sort_keys=True))


def rngs():
    return [make_rng(1000 + i, "roundtrip") for i in range(N_CASES)]


def randrange(rng, lo, hi=None):
    if hi is None:
        lo, hi = 0, lo
    return int(rng.integers(lo, hi))


def choice(rng, options):
    return options[randrange(rng, len(options))]


def fuzz_float(rng):
    # exercise shortest-repr round-tripping on awkward values
    return choice(rng, [
        0.0, 1.0, float(rng.random()) * 1e9, float(rng.random()) * 1e-9,
        1 / 3, math.pi * float(rng.random()),
        float(randrange(rng, 1 << 53)),
    ])


@pytest.mark.parametrize("rng", rngs())
def test_run_result_round_trips(rng):
    result = RunResult(
        scheme=choice(rng, ["wb-gc", "asit", "steins"]),
        workload=choice(rng, ["pers_hash", "cactusADM", "lbm_r"]),
        exec_time_ns=fuzz_float(rng),
        data_reads=randrange(rng, 1 << 40),
        data_writes=randrange(rng, 1 << 40),
        avg_read_latency_ns=fuzz_float(rng),
        avg_write_latency_ns=fuzz_float(rng),
        nvm_write_traffic=randrange(rng, 1 << 40),
        nvm_read_traffic=randrange(rng, 1 << 40),
        energy_nj=fuzz_float(rng),
        metadata_cache_hit_rate=float(rng.random()),
        detail={f"k{i}": fuzz_float(rng) for i in range(randrange(rng, 4))},
    )
    assert RunResult.from_json(through_json(result)) == result


@pytest.mark.parametrize("rng", rngs())
def test_recovery_report_round_trips(rng):
    report = RecoveryReport(
        scheme=choice(rng, ["steins", "osiris", "anubis"]),
        nvm_reads=randrange(rng, 1 << 32),
        nvm_writes=randrange(rng, 1 << 32),
        hashes=randrange(rng, 1 << 32),
        nodes_recovered=randrange(rng, 1 << 20),
    )
    keys = sorted(RecoveryReport.KNOWN_KEYS)
    for key in keys[:randrange(rng, len(keys))]:
        report.bump(key, randrange(rng, 1, 1 << 16))
    assert RecoveryReport.from_json(through_json(report)) == report


def test_recovery_report_rejects_undeclared_detail_keys():
    data = RecoveryReport(scheme="steins").to_json()
    data["detail"] = {"typo_counter": 1}
    with pytest.raises(ValueError):
        RecoveryReport.from_json(data)


@pytest.mark.parametrize("rng", rngs())
def test_case_result_round_trips(rng):
    case = CampaignCase(
        scheme=choice(rng, ["steins", "osiris", "anubis"]),
        workload=choice(rng, ["pers_hash", "pers_swap"]),
        crash_after=randrange(rng, 1 << 20),
        recovery_crash_after=choice(rng, [None, randrange(rng, 1 << 10)]),
        residual_words=choice(rng, [None, randrange(rng, 64)]),
    )
    result = CaseResult(
        case=case,
        outcome=choice(rng, ["recovered", "detected", "silent_corruption"]),
        crash_point=choice(rng, ["", "ctr_write", "tree_update"]),
        crash_index=randrange(rng, -1, 1 << 20),
        recovery_crashed=float(rng.random()) < 0.5,
        detail=choice(rng, ["", "minimized to access 17"]),
    )
    assert CaseResult.from_json(through_json(result)) == result
    assert CampaignCase.from_json(through_json(case)) == case


@pytest.mark.parametrize("rng", rngs())
def test_cell_spec_round_trips(rng):
    kind = choice(rng, ["sim", "probe", "fault"])
    spec = CellSpec(
        kind=kind,
        variant=choice(rng, ["wb-gc", "asit", "steins"]),
        workload=choice(rng, ["pers_hash", "cactusADM"]),
        accesses=randrange(rng, 1, 1 << 20),
        footprint_blocks=randrange(rng, 1, 1 << 20),
        seed=randrange(rng, 1 << 32),
        check=float(rng.random()) < 0.5,
        config=choice(rng, [None, {"clock_ghz": 2.0}]),
        fault={"crash_after": randrange(rng, 1 << 10)}
        if kind == "fault" else None,
    )
    assert CellSpec.from_json(through_json(spec)) == spec
