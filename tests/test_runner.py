"""Runner/harness plumbing: variants, specs, cell reproducibility."""
import pytest

from repro.analysis.figures import FigureHarness, figure_config
from repro.common.config import CounterMode, small_config
from repro.common.errors import ConfigError
from repro.sim.runner import (
    GC_VARIANTS,
    SC_VARIANTS,
    VARIANTS,
    RunSpec,
    make_system,
    run_cell,
)


def test_variant_table_matches_paper_naming():
    assert VARIANTS["wb-gc"] == ("wb", CounterMode.GENERAL)
    assert VARIANTS["steins-sc"] == ("steins", CounterMode.SPLIT)
    # the paper evaluates ASIT and STAR with general counters only
    assert VARIANTS["asit"][1] is CounterMode.GENERAL
    assert VARIANTS["star"][1] is CounterMode.GENERAL
    # figure variant lists match the paper's figure groupings
    assert GC_VARIANTS[0] == "wb-gc" and "steins-gc" in GC_VARIANTS
    assert SC_VARIANTS[0] == "wb-sc" and "steins-sc" in SC_VARIANTS
    assert "scue" not in GC_VARIANTS  # excluded from figures, as in paper


def test_make_system_applies_counter_mode():
    system = make_system("steins-sc", small_config())
    assert system.cfg.security.counter_mode is CounterMode.SPLIT
    assert system.controller.geometry.leaf_coverage == 64


def test_make_system_rejects_unknown():
    with pytest.raises(ConfigError):
        make_system("steins-xx")


def test_run_cell_is_deterministic():
    spec = RunSpec("steins-gc", "cactusADM", accesses=1200,
                   footprint_blocks=2048, seed=77)
    cfg = small_config()
    a = run_cell(spec, cfg)
    b = run_cell(spec, cfg)
    assert a.exec_time_ns == b.exec_time_ns
    assert a.nvm_write_traffic == b.nvm_write_traffic
    assert a.energy_nj == b.energy_nj


def test_run_cell_seed_sensitivity():
    cfg = small_config()
    a = run_cell(RunSpec("wb-gc", "cactusADM", accesses=1200,
                         footprint_blocks=2048, seed=1), cfg)
    b = run_cell(RunSpec("wb-gc", "cactusADM", accesses=1200,
                         footprint_blocks=2048, seed=2), cfg)
    assert a.exec_time_ns != b.exec_time_ns


def test_persistent_workloads_flush(small_trace):
    cfg = small_config()
    # pers_hash is persistent: every store reaches the controller
    result = run_cell(RunSpec("wb-gc", "pers_hash", accesses=1500,
                              footprint_blocks=2048), cfg)
    assert result.data_writes > 0
    # a non-persistent workload of the same length may or may not write,
    # but never writes *more* than its store count
    assert result.data_writes <= 1500


def test_harness_respects_workload_subset():
    harness = FigureHarness(accesses=500, footprint_blocks=512,
                            workloads=("pers_swap",),
                            cfg=small_config())
    rows = harness.fig9_execution_time()
    assert list(rows) == ["pers_swap"]
    assert set(rows["pers_swap"]) == set(GC_VARIANTS)


def test_figure_config_structure():
    cfg = figure_config()
    # security side stays at Table I
    assert cfg.security.metadata_cache.size_bytes == 256 * 1024
    assert cfg.nvm_capacity_bytes == 16 * (1 << 30)
    # CPU side is scaled for steady state
    assert cfg.hierarchy.l3.size_bytes == 512 * 1024


def test_normalization_math():
    cfg = small_config()
    base = run_cell(RunSpec("wb-gc", "pers_swap", accesses=1000,
                            footprint_blocks=1024), cfg)
    norm = base.normalized_to(base)
    for key in ("exec_time", "write_latency", "read_latency",
                "write_traffic", "energy"):
        assert norm[key] == pytest.approx(1.0)
