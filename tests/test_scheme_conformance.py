"""Registry-parametrized conformance suite (issue tentpole gate).

Every scheme that registers via :func:`repro.schemes.register_scheme`
is pulled through the same oracle gauntlet — no per-scheme test lists
to forget to extend.  A plugin that registers and passes this file has
met the controller-boundary contract:

* the differential oracle agrees on clean runs, targeted crashes at
  every injection point the scheme fires, and crash-during-recovery;
* every applicable tamper/replay is loud (detected or provably
  neutralized);
* recovery is idempotent, and survives a second crash (hypothesis
  property; the deeper search lives in ``test_double_crash.py``,
  which iterates the same registry);
* a simulation cell is deterministic — two independent runs of the
  scheme's first registered variant are byte-identical;
* the registry itself enforces the registration contract (the
  ``TestRegistrationContract`` half below).
"""
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import drive, scaled

from repro.baselines.base import SecureMemoryController
from repro.baselines.wb import WBController
from repro.common.config import CounterMode, small_config
from repro.common.errors import ConfigError, CrashInjected
from repro.faults.registry import (
    INJECTION_POINTS,
    POINT_RECOVERY,
    FaultPlan,
    armed,
)
from repro.oracle.harness import TAMPER_KINDS, run_clean_case, \
    run_tamper_case
from repro.oracle.mutants import MUTANTS
from repro.oracle.sweep import (
    crash_plans_from_log,
    probe_fire_log,
    run_oracle_cell,
)
from repro.schemes import (
    BASE_FAULT_POINTS,
    RECOVERY_STYLES,
    SchemeCapabilities,
    get_scheme,
    recoverable_scheme_names,
    register_scheme,
    resolve_schemes,
    scheme_names,
    variant_table,
)
from repro.schemes import registry as registry_module
from repro.sim.crash import capture_golden, check_recovered
from repro.sim.runner import VARIANTS, RunSpec, run_cell
from repro.sim.system import SCHEMES, SecureNVMSystem
from repro.workloads import get_profile

ALL_SCHEMES = scheme_names()
RECOVERABLE = recoverable_scheme_names()

#: tamper kinds that need the crash/recover cycle (skipped on WB)
_TREE_TAMPERS = ("tree-counter", "tree-replay")

#: the outcomes an untampered case is allowed to have
_HONEST = ("match", "unsupported", "no_crash")


@pytest.fixture(scope="module")
def cfg():
    return small_config(metadata_cache_bytes=2048)


@pytest.fixture(scope="module")
def trace():
    return get_profile("pers_hash").generate(seed=2024, n=250,
                                             footprint=2048)


# --------------------------------------------------- registry coherence
def test_registry_backs_the_simulator_views():
    assert set(SCHEMES) == set(ALL_SCHEMES)
    assert VARIANTS == variant_table()
    assert set(RECOVERABLE) <= set(ALL_SCHEMES)


def test_ci_conformance_matrix_mirrors_the_registry():
    """The per-scheme CI matrix is a static YAML list; a plugin that
    registers without extending it would silently skip its dedicated
    gate, so the list is pinned to the registry here."""
    import re
    from pathlib import Path

    ci = Path(__file__).resolve().parent.parent / ".github" / \
        "workflows" / "ci.yml"
    match = re.search(r"^\s*scheme:\s*\[([^\]]+)\]", ci.read_text(),
                      flags=re.MULTILINE)
    assert match, "ci.yml lost its conformance scheme matrix"
    listed = sorted(s.strip() for s in match.group(1).split(","))
    assert listed == sorted(ALL_SCHEMES)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_capability_declaration_is_coherent(scheme):
    entry = get_scheme(scheme)
    caps = entry.capabilities
    assert entry.factory.name == scheme
    assert caps.recovery in RECOVERY_STYLES
    assert (caps.recovery == "none") != entry.supports_recovery
    assert set(caps.fault_points) <= set(INJECTION_POINTS)
    assert not set(caps.fault_points) & set(BASE_FAULT_POINTS)
    if entry.supports_recovery:
        assert POINT_RECOVERY in caps.fault_points
    for variant, mode in caps.variants:
        assert VARIANTS[variant] == (scheme, mode)
        assert mode in caps.counter_modes


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_oracle_snapshot_declares_extra_state(scheme, cfg):
    """The durable trust base is a stated, JSON-serializable answer."""
    system = SecureNVMSystem(scheme, cfg, check=True)
    system.store(3, flush=True)
    snap = system.controller.oracle_snapshot()
    assert set(snap) == {"root", "tree", "dirty", "extra"}
    extra = snap["extra"]
    assert isinstance(extra, dict)
    assert all(isinstance(k, str) for k in extra)
    json.dumps(extra)  # comparable across processes => serializable


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_every_scheme_has_mutant_coverage(scheme):
    """The oracle's self-test asserts at least one seeded bug per
    scheme — a scheme nothing can be planted into is untestable."""
    assert any(scheme in m.schemes for m in MUTANTS.values())


# ----------------------------------------------------- oracle: clean run
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_clean_case_matches(scheme, cfg, trace):
    result = run_clean_case(scheme, "pers_hash", trace, cfg)
    assert result.outcome == "match", result.detail


# ----------------------------------------------- oracle: targeted crashes
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_targeted_crashes_conform(scheme, cfg, trace):
    """Crash at the first/middle/last occurrence of every injection
    point the scheme fires, plus crash-during-recovery doses: zero
    silent divergences allowed."""
    log = probe_fire_log(scheme, cfg, trace)
    assert log, "a write-heavy trace must fire injection points"
    for plan in crash_plans_from_log(log, recovery_doses=(1, 2)):
        result = run_oracle_cell(scheme, "pers_hash", plan, cfg, trace)
        assert result.outcome in _HONEST, (
            f"{scheme} {plan}: {result.outcome} {result.detail}")


# ---------------------------------------------------- oracle: tampering
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("kind", TAMPER_KINDS)
def test_tampers_are_loud(scheme, kind, cfg, trace):
    if kind in _TREE_TAMPERS and not SCHEMES[scheme].supports_recovery:
        pytest.skip("tree tampers need the crash/recover cycle")
    result = run_tamper_case(kind, scheme, "pers_hash", trace, cfg)
    assert result.outcome in ("detected", "neutralized"), (
        f"{scheme} under {kind}: {result.outcome} {result.detail}")


# ------------------------------------------------- recovery properties
def _crashed_system(scheme, crash_after):
    system = SecureNVMSystem(scheme,
                             small_config(metadata_cache_bytes=512),
                             check=True)
    run = get_profile("pers_hash").generate(seed=13, n=120, footprint=512)
    plan = FaultPlan(crash_after=crash_after)
    with armed(plan):
        try:
            drive(system, run)
        except CrashInjected:
            pass
    golden = capture_golden(system)
    system.crash()
    return system, golden


@pytest.mark.parametrize("scheme", RECOVERABLE)
@settings(max_examples=scaled(8), deadline=None)
@given(crash_after=st.integers(min_value=1, max_value=160))
def test_recovery_is_idempotent(scheme, crash_after):
    """Recover, then crash-and-recover again with no new writes: the
    second pass must land on exactly the state the first one reached."""
    system, golden = _crashed_system(scheme, crash_after)
    system.recover()
    check_recovered(system, golden)
    system.crash()
    system.recover()
    check_recovered(system, golden)
    system.verify_all_persisted()


@pytest.mark.parametrize("scheme", RECOVERABLE)
@settings(max_examples=scaled(8), deadline=None)
@given(crash_after=st.integers(min_value=1, max_value=160),
       dose=st.integers(min_value=1, max_value=10))
def test_recovery_survives_double_crash(scheme, crash_after, dose):
    system, golden = _crashed_system(scheme, crash_after)
    plan = FaultPlan(recovery_crash_after=dose)
    with armed(plan):
        try:
            system.recover()
        except CrashInjected:
            system.crash()
            system.recover()
    check_recovered(system, golden)
    system.verify_all_persisted()


# ------------------------------------------------ golden determinism
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_cell_is_deterministic(scheme, cfg):
    """Two independent simulations of the scheme's first registered
    variant produce byte-identical stats documents."""
    variant = get_scheme(scheme).capabilities.variants[0][0]
    spec = RunSpec(variant=variant, workload="pers_hash", accesses=600,
                   footprint_blocks=1024, seed=7)
    one = json.dumps(run_cell(spec, cfg).to_json(), sort_keys=True)
    two = json.dumps(run_cell(spec, cfg).to_json(), sort_keys=True)
    assert one == two


# ------------------------------------------- the registration contract
class TestRegistrationContract:
    """register_scheme must reject every malformed plugin loudly.

    Each case builds a throwaway controller class; all of them fail
    validation *before* the registry is touched, so the global registry
    stays pristine for the rest of the suite.
    """

    def _caps(self, **kw):
        base = dict(counter_modes=(CounterMode.GENERAL,),
                    recovery="none",
                    variants=(("ghost-gc", CounterMode.GENERAL),))
        base.update(kw)
        return SchemeCapabilities(**base)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_scheme("wb", WBController, self._caps())

    def test_name_mismatch_rejected(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="must match"):
            register_scheme("spectre", Ghost, self._caps())

    def test_missing_oracle_extra_state_rejected(self):
        class Bare(SecureMemoryController):
            name = "bare"

        with pytest.raises(ConfigError, match="SL701"):
            register_scheme("bare", Bare, self._caps())

    def test_unknown_recovery_style_rejected(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="recovery style"):
            register_scheme("ghost", Ghost,
                            self._caps(recovery="wishful-thinking"))

    def test_recovery_contradiction_rejected(self):
        class Ghost(WBController):
            name = "ghost"  # supports_recovery stays False

        with pytest.raises(ConfigError, match="contradicts"):
            register_scheme("ghost", Ghost,
                            self._caps(recovery="shadow-table"))

    def test_recovery_capable_must_declare_recovery_point(self):
        class Ghost(WBController):
            name = "ghost"
            supports_recovery = True

            def recover(self):  # pragma: no cover - never runs
                raise NotImplementedError

        with pytest.raises(ConfigError, match="recovery.step"):
            register_scheme("ghost", Ghost,
                            self._caps(recovery="shadow-table"))

    def test_unknown_fault_point_rejected(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="injection points"):
            register_scheme("ghost", Ghost,
                            self._caps(fault_points=("warp.core",)))

    def test_base_fault_point_redeclaration_rejected(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="base fault points"):
            register_scheme("ghost", Ghost,
                            self._caps(fault_points=("controller.write",)))

    def test_unknown_stats_key_rejected(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="stats keys"):
            register_scheme("ghost", Ghost,
                            self._caps(stats_keys=("warp_factor",)))

    def test_variant_name_collision_rejected(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="already used"):
            register_scheme("ghost", Ghost, self._caps(
                variants=(("wb-gc", CounterMode.GENERAL),)))

    def test_variant_mode_outside_declared_rejected(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="counter mode"):
            register_scheme("ghost", Ghost, self._caps(
                variants=(("ghost-sc", CounterMode.SPLIT),)))

    def test_variants_required(self):
        class Ghost(WBController):
            name = "ghost"

        with pytest.raises(ConfigError, match="figure variant"):
            register_scheme("ghost", Ghost, self._caps(variants=()))

    def test_valid_plugin_registers_and_resolves(self, monkeypatch):
        """A well-formed plugin lands in every registry query (the
        registry is restored afterwards, so no other test sees it)."""
        monkeypatch.setattr(registry_module, "_REGISTRY",
                            dict(registry_module._REGISTRY))

        class Ghost(WBController):
            name = "ghost"

            def _oracle_extra_state(self):
                return {"ghost": 0}

        entry = register_scheme("ghost", Ghost, self._caps())
        assert not entry.supports_recovery
        assert "ghost" in scheme_names()
        assert variant_table()["ghost-gc"] == ("ghost",
                                               CounterMode.GENERAL)
        assert resolve_schemes(["ghost"]) == ["ghost"]
        with pytest.raises(ConfigError, match="does not support"):
            resolve_schemes(["ghost"], recoverable_only=True)


class TestResolveSchemes:
    def test_default_is_every_scheme_sorted(self):
        assert resolve_schemes() == sorted(ALL_SCHEMES)

    def test_recoverable_only_default(self):
        assert resolve_schemes(recoverable_only=True) == \
            sorted(RECOVERABLE)

    def test_explicit_names_keep_order_and_dedupe(self):
        assert resolve_schemes(["secpm", "wb", "secpm"]) == \
            ["secpm", "wb"]

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigError, match="registered schemes"):
            resolve_schemes(["nosuch"])

    def test_recoverable_only_rejects_wb(self):
        with pytest.raises(ConfigError, match="does not support"):
            resolve_schemes(["wb"], recoverable_only=True)
