"""SCUE — the excluded comparator, implemented to quantify the exclusion."""
import pytest

from repro.analysis.consistency import check_verification_closure
from repro.attacks import AttackInjector
from repro.baselines.scue import SCUEController
from repro.common.config import CounterMode
from repro.common.errors import IntegrityError, RecoveryError
from repro.common.rng import make_rng
from repro.nvm.layout import Region
from tests.test_controller_base import make_rig


def scue_rig(cache_bytes=2048, mode=CounterMode.GENERAL):
    return make_rig(mode, SCUEController, cache_bytes)


def run_workload(controller, n=250, span=2000, seed=51):
    rng = make_rng(seed, "scue")
    written = {}
    for addr in rng.integers(0, span, n):
        value = int(addr) * 7 + 3
        controller.write_data(int(addr), value)
        written[int(addr)] = value
    return written


@pytest.mark.parametrize("mode", [CounterMode.GENERAL, CounterMode.SPLIT])
def test_roundtrip(mode):
    controller, _, _ = scue_rig(mode=mode)
    written = run_workload(controller)
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_recovery_root_counts_writes():
    controller, _, _ = scue_rig()
    for i in range(10):
        controller.write_data(i % 3, i)
    assert controller.recovery_root.value == 10


def test_verification_closure_under_churn():
    controller, _, _ = scue_rig(cache_bytes=1024)
    run_workload(controller, n=500, span=6000)
    check_verification_closure(controller)


@pytest.mark.parametrize("mode", [CounterMode.GENERAL, CounterMode.SPLIT])
def test_crash_rebuild_recovery(mode):
    controller, _, _ = scue_rig(mode=mode)
    written = run_workload(controller)
    controller.crash()
    report = controller.recover()
    assert report.nodes_recovered > 0
    assert report.nvm_writes > report.nodes_recovered  # whole tree rewritten
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_recovery_cost_scales_with_data_not_cache():
    """The paper's reason for excluding SCUE."""
    small_fp, _, _ = scue_rig()
    run_workload(small_fp, n=200, span=400)
    small_fp.crash()
    r_small = small_fp.recover()

    big_fp, _, _ = scue_rig()
    run_workload(big_fp, n=200, span=6400)
    big_fp.crash()
    r_big = big_fp.recover()
    # same write count, same cache — but 16x the data footprint means
    # far more leaves to rebuild
    assert r_big.nvm_reads > 2 * r_small.nvm_reads


def test_scue_vs_steins_recovery_cost():
    from repro.core.controller import SteinsController

    steins, _, _ = make_rig(CounterMode.GENERAL, SteinsController, 2048)
    run_workload(steins, n=300, span=6000, seed=52)
    steins.crash()
    r_steins = steins.recover()

    scue, _, _ = scue_rig()
    run_workload(scue, n=300, span=6000, seed=52)
    scue.crash()
    r_scue = scue.recover()
    # SCUE rebuilds everything; Steins only the (cache-bounded) dirty set
    assert r_scue.nvm_reads > 2 * r_steins.nvm_reads
    assert r_scue.nvm_writes > 10 * max(1, r_steins.nvm_writes)


def test_replayed_data_detected_by_recovery_root():
    controller, device, _ = scue_rig()
    injector = AttackInjector(device)
    controller.write_data(5, 1)
    injector.record(Region.DATA, 5)
    controller.write_data(5, 2)
    controller.crash()
    injector.replay(Region.DATA, 5)
    with pytest.raises(IntegrityError):
        controller.recover()


def test_tampered_data_detected_during_rebuild():
    controller, device, _ = scue_rig()
    controller.write_data(5, 99)
    controller.crash()
    AttackInjector(device).tamper_data_block(5)
    with pytest.raises(IntegrityError):
        controller.recover()


def test_second_epoch_after_recovery():
    controller, _, _ = scue_rig()
    written = run_workload(controller, seed=53)
    controller.crash()
    controller.recover()
    written.update(run_workload(controller, n=100, span=2000, seed=54))
    controller.crash()
    controller.recover()
    for addr, value in written.items():
        assert controller.read_data(addr) == value


def test_requires_lazy_updates():
    from tests.test_eager_update import eager_rig

    with pytest.raises(RecoveryError, match="lazy"):
        eager_rig(SCUEController)


def test_recover_without_crash_rejected():
    controller, _, _ = scue_rig()
    with pytest.raises(RecoveryError):
        controller.recover()
