"""The distributed sweep service: byte-identity, dedup, crash recovery.

The acceptance property of :mod:`repro.serve` is that distribution is
*invisible* in the results: a report assembled from service frames is
byte-identical to a serial ``run_sweep`` of the same specs — cold, warm
from the shared cache, and even when a worker process is SIGKILLed
mid-sweep and its cells are retried.
"""
# simlint: disable-file=SL102 -- host-side deadlines for service/worker waits; no simulated time in this file
import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.exec import CellSpec, MemoryBackend, run_sweep
from repro.exec.configio import config_to_dict
from repro.exec.workers import WorkerCrew
from repro.serve.client import ServiceClient, ServiceError, submit_sweep
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_submit,
    decode_frame,
    encode_frame,
    submit_frame,
)
from repro.serve.queue import InFlightTable, ShardedQueue, Task, Waiter
from repro.serve.service import SweepService

CFG = config_to_dict(small_config(metadata_cache_bytes=2048))


def matrix(accesses=300, seed=7):
    return [CellSpec("sim", v, "pers_hash", accesses, 256, seed,
                     config=CFG)
            for v in ("steins-gc", "asit", "wb-gc")]


def fingerprints(report):
    return [json.dumps(v.to_json(), sort_keys=True)
            for v in report.values]


class _Running:
    """One live service on a background event-loop thread."""

    def __init__(self, service: SweepService) -> None:
        self.service = service
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.service.start()
            await self.service.serve_forever()

        asyncio.run(main())

    def start(self) -> "_Running":
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(self.service.socket_path):
            if time.monotonic() > deadline:
                raise RuntimeError("service socket never appeared")
            time.sleep(0.02)
        return self

    def stop(self) -> None:
        if self.thread.is_alive():
            try:
                ServiceClient(self.service.socket_path).shutdown()
            except ServiceError:
                pass
            self.thread.join(timeout=15.0)


@pytest.fixture
def serve(tmp_path):
    running: list[_Running] = []

    def start(workers=2, cache=None, **kwargs) -> _Running:
        sock = str(tmp_path / f"svc{len(running)}.sock")
        svc = SweepService(sock, workers=workers, cache=cache, **kwargs)
        handle = _Running(svc).start()
        running.append(handle)
        return handle

    yield start
    for handle in running:
        handle.stop()


class TestProtocol:
    def test_frames_round_trip_canonically(self):
        frame = submit_frame([{"kind": "sim"}], "v/1")
        line = encode_frame(frame)
        assert line.endswith(b"\n") and b": " not in line
        assert decode_frame(line) == frame
        # canonical: key order never changes the bytes
        assert encode_frame({"b": 1, "a": 2}) \
            == encode_frame({"a": 2, "b": 1})

    def test_decode_rejects_garbage_loudly(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_frame(b'["no", "op"]\n')

    def test_check_submit_enforces_revision_and_shape(self):
        good = submit_frame([{"kind": "sim"}], None)
        assert check_submit(good) == [{"kind": "sim"}]
        with pytest.raises(ProtocolError, match="revision"):
            check_submit({"op": "submit", "v": PROTOCOL_VERSION + 1,
                          "specs": [{}]})
        with pytest.raises(ProtocolError, match="non-empty"):
            check_submit({"op": "submit", "v": PROTOCOL_VERSION,
                          "specs": []})


class TestQueue:
    def task(self, n, key=None):
        return Task(n, key or f"{n:02x}" + "0" * 62, "sim", {})

    def test_round_robin_never_starves_a_shard(self):
        q = ShardedQueue(4)
        for i in range(8):
            q.push(self.task(i))
        assert q.depth() == 8
        popped = [q.pop().task_id for _ in range(8)]
        assert sorted(popped) == list(range(8))
        assert q.pop() is None and not q

    def test_shard_is_content_derived(self):
        q = ShardedQueue(8)
        key = "ab" * 32
        assert q.shard_of(key) == q.shard_of(key)
        assert 0 <= q.shard_of(key) < 8

    def test_inflight_dedups_by_key(self):
        table = InFlightTable()
        task = table.open("aa" * 32, "sim", {})
        task.waiters.append(Waiter(0, 0))
        joined = table.join("aa" * 32, Waiter(1, 3))
        assert joined is task and len(task.waiters) == 2
        with pytest.raises(ConfigError):
            table.open("aa" * 32, "sim", {})
        assert table.join("bb" * 32, Waiter(0, 1)) is None
        closed = table.close(task.task_id)
        assert closed is task and len(table) == 0
        # the key is free again after close
        assert table.open("aa" * 32, "sim", {}).task_id != task.task_id


class TestWorkerCrew:
    def test_dispatch_result_and_errors(self):
        crew = WorkerCrew(1)
        crew.start()
        try:
            spec = matrix(accesses=60)[0]
            crew.dispatch(0, 1, spec.to_json())
            assert crew.idle_workers() == []
            item = None
            deadline = time.monotonic() + 60
            while item is None and time.monotonic() < deadline:
                item = crew.result(timeout=0.2)
            worker_id, task_id, ok, payload, elapsed = item
            assert (worker_id, task_id, ok) == (0, 1, True)
            assert "result" in payload and elapsed > 0
            assert crew.idle_workers() == [0]
            # a deterministic raise comes back as an error result
            bad = CellSpec("probe", "steins", "pers_hash", 60, 256, 7)
            crew.dispatch(0, 2, bad.to_json())
            item = None
            deadline = time.monotonic() + 60
            while item is None and time.monotonic() < deadline:
                item = crew.result(timeout=0.2)
            _, _, ok, payload, _ = item
            assert not ok and "error" in payload
        finally:
            crew.stop()

    def test_reap_dead_respawns_and_reports_the_lost_task(self):
        crew = WorkerCrew(1)
        crew.start()
        try:
            pid = crew.pids()[0]
            crew.dispatch(0, 9, matrix(accesses=5000)[0].to_json())
            os.kill(pid, signal.SIGKILL)
            lost = []
            deadline = time.monotonic() + 30
            while not lost and time.monotonic() < deadline:
                lost = crew.reap_dead()
                time.sleep(0.05)
            assert lost == [(0, 9)]
            assert crew.respawns == 1
            assert crew.pids()[0] != pid
        finally:
            crew.stop()


@pytest.mark.slow
class TestServiceE2E:
    def test_cold_warm_and_dedup_byte_identity(self, serve):
        specs = matrix()
        specs.append(specs[0])  # duplicate -> in-flight dedup
        serial = run_sweep(specs)
        handle = serve(workers=2, cache=MemoryBackend())
        sock = handle.service.socket_path

        cold = run_sweep(specs, service=sock)
        assert fingerprints(cold) == fingerprints(serial)
        assert cold.executed == 3
        assert cold.deduped == 1 and cold.cached == 0

        warm = run_sweep(specs, service=sock)
        assert fingerprints(warm) == fingerprints(serial)
        assert warm.executed == 0, "warm run must recompute nothing"
        assert warm.cached == len(specs)

        stats = ServiceClient(sock).stats()
        metrics = stats["metrics"]
        assert metrics["serve.cells.executed"]["value"] == 3
        assert metrics["serve.cells.deduped"]["value"] == 1
        assert metrics["serve.cells.cached"]["value"] == len(specs)
        assert stats["queue_depth"] == 0 and stats["inflight"] == 0

    def test_cross_request_cache_sharing(self, serve):
        cache = MemoryBackend()
        specs = matrix()
        first = serve(workers=1, cache=cache)
        cold = run_sweep(specs, service=first.service.socket_path)
        assert cold.executed == len(specs)
        first.stop()
        # a fresh service over the same backend starts warm
        second = serve(workers=1, cache=cache)
        warm = run_sweep(specs, service=second.service.socket_path)
        assert warm.executed == 0 and warm.cached == len(specs)
        assert fingerprints(warm) == fingerprints(cold)

    def test_progress_callback_fires_per_cell(self, serve):
        handle = serve(workers=2, cache=MemoryBackend())
        seen = []
        run_sweep(matrix(), service=handle.service.socket_path,
                  progress=lambda done, total, out: seen.append(
                      (done, total)))
        assert [d for d, _ in seen] == [1, 2, 3]
        assert all(t == 3 for _, t in seen)

    def test_deterministic_cell_error_propagates_not_retries(self, serve):
        handle = serve(workers=1, cache=MemoryBackend())
        # probe cells without a config raise deterministically
        bad = CellSpec("probe", "steins", "pers_hash", 60, 256, 7)
        with pytest.raises(ServiceError, match="cell 1"):
            submit_sweep([matrix(accesses=60)[0], bad],
                         handle.service.socket_path)
        metrics = ServiceClient(
            handle.service.socket_path).stats()["metrics"]
        assert metrics["serve.cells.errors"]["value"] == 1
        assert "serve.worker.retries" not in metrics, \
            "a deterministic raise must never be retried"

    def test_invalid_spec_rejected_per_cell(self, serve):
        handle = serve(workers=1, cache=MemoryBackend())
        client = ServiceClient(handle.service.socket_path)
        frames, done = client.submit([{"kind": "no-such-kind"}])
        assert frames[0]["op"] == "cell_error"
        assert "invalid spec" in frames[0]["error"]
        assert done["total"] == 1

    def test_ping_stats_and_worker_table(self, serve):
        handle = serve(workers=2, cache=MemoryBackend())
        client = ServiceClient(handle.service.socket_path)
        assert client.ping()
        stats = client.stats()
        assert len(stats["workers"]) == 2
        assert all(w["pid"] > 0 and not w["busy"]
                   for w in stats["workers"])
        assert stats["metrics"]["serve.workers"]["value"] == 2.0
        # the stats dump round-trips into a real registry
        registry = client.metrics_registry()
        assert registry.as_dict() == stats["metrics"]

    def test_unknown_op_answers_an_error_frame(self, serve):
        handle = serve(workers=1, cache=MemoryBackend())
        client = ServiceClient(handle.service.socket_path)
        with pytest.raises(ServiceError, match="unknown op"):
            client._roundtrip({"op": "teleport"})

    def test_shutdown_drains_and_removes_the_socket(self, serve):
        handle = serve(workers=1, cache=MemoryBackend())
        sock = handle.service.socket_path
        run_sweep(matrix(accesses=60), service=sock)
        ServiceClient(sock).shutdown()
        handle.thread.join(timeout=15.0)
        assert not handle.thread.is_alive()
        assert not os.path.exists(sock)


@pytest.mark.slow
class TestWorkerCrashRecovery:
    def test_sigkilled_worker_is_retried_byte_identically(self, serve):
        # long cells so the kill lands mid-computation
        specs = matrix(accesses=4000, seed=13)
        serial = run_sweep(specs)
        handle = serve(workers=1, cache=MemoryBackend(),
                       retry_limit=3, backoff_s=0.01)
        sock = handle.service.socket_path
        client = ServiceClient(sock)

        killed = threading.Event()

        def killer() -> None:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                busy = [w for w in client.stats()["workers"]
                        if w["busy"]]
                if busy:
                    os.kill(busy[0]["pid"], signal.SIGKILL)
                    killed.set()
                    return
                time.sleep(0.02)

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        report = run_sweep(specs, service=sock)
        thread.join(timeout=60)

        assert killed.is_set(), "test never observed a busy worker"
        assert fingerprints(report) == fingerprints(serial), \
            "a retried cell must be byte-identical to a serial run"
        metrics = client.stats()["metrics"]
        assert metrics["serve.worker.retries"]["value"] >= 1
        assert metrics["serve.worker.respawns"]["value"] >= 1
        # every cell still accounted exactly once
        assert report.total == len(specs)
        assert report.executed == len(specs)
