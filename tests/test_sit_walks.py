"""Deep verification-walk behaviour of the shared controller.

The fetch-and-verify recursion (Sec. II-C) is the security-critical hot
path; these tests pin its exact behaviour: chain depth, caching of
ancestors, zero-subtree handling, and root anchoring.
"""
import pytest

from repro.baselines.wb import WBController
from repro.common.config import CounterMode
from repro.core.controller import SteinsController
from repro.nvm.layout import Region
from tests.test_controller_base import make_rig


def fresh_rig(cls=WBController, cache_bytes=8 * 1024):
    return make_rig(CounterMode.GENERAL, cls, cache_bytes)


def test_cold_fetch_walks_whole_branch():
    controller, device, _ = fresh_rig()
    g = controller.geometry
    controller.read_data(0)
    # every node on the branch is now cached (the recursive walk fills
    # ancestors on its way down)
    for level, index in g.branch(0):
        assert controller.metacache.contains(g.node_offset(level, index))


def test_warm_fetch_stops_at_cached_ancestor():
    controller, device, _ = fresh_rig()
    controller.read_data(0)             # branch cached
    reads_before = device.stats.reads[Region.TREE]
    controller.read_data(8)             # sibling leaf: shares all parents
    # only the new leaf itself needed a tree read
    assert device.stats.reads[Region.TREE] == reads_before + 1


def test_zero_subtree_needs_no_storage():
    controller, device, _ = fresh_rig()
    assert controller.read_data(123456) == 0
    # nothing was ever persisted for this untouched region
    assert device.stats.writes[Region.TREE] == 0


def test_root_anchors_top_level():
    controller, _, _ = fresh_rig()
    g = controller.geometry
    controller.write_data(0, 7)
    controller.flush_all()
    top_level, top_index = g.branch(0)[-1]
    slot = g.parent_slot(top_level, top_index)
    assert controller.root.counter(slot) > 0


def test_walk_depth_equals_levels():
    controller, device, _ = fresh_rig()
    g = controller.geometry
    controller.read_data(0)
    # one tree read per in-NVM level (cold walk), all verified
    assert device.stats.reads[Region.TREE] == g.num_levels
    assert controller.stats.metadata_fetches == g.num_levels


def test_metadata_fetch_counts_misses_only():
    controller, _, _ = fresh_rig()
    controller.read_data(0)
    fetched = controller.stats.metadata_fetches
    for _ in range(5):
        controller.read_data(0)
    assert controller.stats.metadata_fetches == fetched


@pytest.mark.parametrize("cls", [WBController, SteinsController])
def test_distant_blocks_share_only_upper_levels(cls):
    controller, device, _ = fresh_rig(cls)
    g = controller.geometry
    a, b = 0, g.num_data_blocks - 1
    controller.read_data(a)
    reads_a = device.stats.reads[Region.TREE]
    controller.read_data(b)
    shared = set(g.branch(a)) & set(g.branch(b))
    new_reads = device.stats.reads[Region.TREE] - reads_a
    assert new_reads == g.num_levels - len(shared)


def test_leaf_eviction_then_reload_verifies_under_new_parent():
    """After a lazy flush the parent advanced; the re-fetched leaf was
    sealed under exactly that advanced counter."""
    controller, _, _ = fresh_rig()
    g = controller.geometry
    controller.write_data(0, 1)
    leaf_offset = g.node_offset(0, 0)
    node = controller.metacache.peek(leaf_offset)
    controller.metacache.remove(leaf_offset)
    controller._flush_dirty_node(node)
    refetched = controller._ensure_node(0, 0)  # must verify cleanly
    assert refetched.counter(0) == node.counter(0)
    assert controller.read_data(0) == 1
