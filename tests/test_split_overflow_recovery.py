"""Split-counter overflow interacting with crash recovery (Steins-SC).

A minor overflow resets all minors, skip-updates the major, and
re-encrypts every covered block — the most intricate state transition in
the system.  Recovery must regenerate exactly that state from the
re-encrypted data blocks' echoes, with the LInc accounting absorbing the
skip jump.
"""

from repro.common.config import CounterMode
from repro.core.controller import SteinsController
from repro.nvm.layout import Region
from tests.test_controller_base import make_rig
from tests.test_steins_controller import assert_linc_invariant


def rig():
    return make_rig(CounterMode.SPLIT, SteinsController, 8 * 1024)


def force_overflow(controller, leaf_block=0, extra_blocks=(1, 2)):
    """Drive one block's 6-bit minor over the edge (63 -> overflow)."""
    for b in extra_blocks:
        controller.write_data(b, b * 100)
    for i in range(64):
        controller.write_data(leaf_block, i)
    assert controller.stats.reencrypted_blocks > 0


def test_overflow_preserves_linc_invariant():
    controller, _, _ = rig()
    force_overflow(controller)
    assert_linc_invariant(controller)


def test_overflow_then_crash_then_recover():
    controller, _, _ = rig()
    force_overflow(controller)
    controller.write_data(5, 555)   # extra dirty state after the jump
    controller.crash()
    controller.recover()
    assert controller.read_data(0) == 63       # last value written
    assert controller.read_data(1) == 100
    assert controller.read_data(2) == 200
    assert controller.read_data(5) == 555
    assert controller.read_data(3) == 0        # materialized as zero
    assert_linc_invariant(controller)


def test_recovered_leaf_matches_skip_updated_state():
    controller, device, _ = rig()
    force_overflow(controller)
    leaf_offset = controller.geometry.node_offset(0, 0)
    golden = controller.metacache.peek(leaf_offset).snapshot()
    controller.crash()
    controller.recover()
    recovered = controller.metacache.peek(leaf_offset)
    assert recovered is not None
    # identical (major, minors): the echoes carry the skip-updated major
    assert recovered.snapshot()[3] == golden[3]
    assert recovered.block.major >= 1


def test_echoes_share_the_post_overflow_major():
    controller, device, _ = rig()
    force_overflow(controller)
    majors = set()
    for addr in range(64):
        value = device.peek(Region.DATA, addr)
        if value is not None:
            majors.add(value[3] >> 6)
    assert len(majors) == 1   # re-encryption unified every covered block


def test_multiple_overflows_stay_consistent():
    controller, _, _ = rig()
    for round_ in range(3):
        for i in range(64):
            controller.write_data(0, round_ * 1000 + i)
        controller.crash()
        controller.recover()
    assert controller.read_data(0) == 2000 + 63
    assert controller.metacache.peek(
        controller.geometry.node_offset(0, 0)) is not None
    assert_linc_invariant(controller)


def test_gensum_aligned_after_overflow():
    """Sec. III-B.1: the skip update aligns the generated counter upward
    in multiples of 2^6."""
    controller, _, _ = rig()
    for i in range(64):
        controller.write_data(0, i)
    leaf = controller.metacache.peek(controller.geometry.node_offset(0, 0))
    assert leaf.gensum() % 64 == 0
    assert leaf.gensum() >= 64
