"""Steins controller runtime behaviour (paper Sec. III-B/C/D/E/F).

The central invariant (checked from scratch after operation batches):
``L_k Inc == sum over dirty cached level-k nodes of
(gensum(cached) - gensum(persisted stale version))``, once the NV parent
buffer is drained.
"""
import pytest

from repro.common.config import CounterMode
from repro.common.rng import make_rng
from repro.core.controller import SteinsController
from repro.counters import OverflowPolicy
from repro.integrity.node import SITNode
from repro.nvm.layout import Region
from tests.test_controller_base import make_rig


def steins_rig(mode=CounterMode.GENERAL, cache_bytes=8 * 1024):
    return make_rig(mode, SteinsController, cache_bytes)


def lincs_ground_truth(controller) -> list[int]:
    """Recompute every LInc from the definition (Sec. III-D)."""
    sums = [0] * controller.geometry.num_levels
    for offset, node in controller.metacache.dirty_entries():
        snap = controller.device.peek(Region.TREE, offset)
        stale_gensum = SITNode.from_snapshot(snap).gensum() if snap else 0
        sums[node.level] += node.gensum() - stale_gensum
    return sums


def assert_linc_invariant(controller):
    controller.drain_buffer()
    assert controller.lincs.values() == lincs_ground_truth(controller)


@pytest.mark.parametrize("mode", [CounterMode.GENERAL, CounterMode.SPLIT])
def test_roundtrip(mode):
    controller, _, _ = steins_rig(mode)
    controller.write_data(1, 111)
    controller.write_data(2, 222)
    assert controller.read_data(1) == 111
    assert controller.read_data(2) == 222


def test_uses_skip_update_policy():
    controller, _, _ = steins_rig(CounterMode.SPLIT)
    assert controller._overflow_policy is OverflowPolicy.SKIP


def test_l0inc_tracks_leaf_increments():
    controller, _, _ = steins_rig()
    for _ in range(5):
        controller.write_data(0, 9)
    controller.write_data(100, 9)
    assert controller.lincs.get(0) == 6
    assert_linc_invariant(controller)


def test_linc_invariant_under_churn():
    controller, _, _ = steins_rig(cache_bytes=1024)
    rng = make_rng(7, "steins")
    for addr in rng.integers(0, 6000, 600):
        controller.write_data(int(addr), int(addr) * 7)
    assert_linc_invariant(controller)
    for addr in sorted(set(int(a) for a in rng.integers(0, 6000, 200))):
        controller.read_data(addr)
    assert_linc_invariant(controller)


@pytest.mark.parametrize("mode", [CounterMode.GENERAL, CounterMode.SPLIT])
def test_linc_invariant_split_and_general(mode):
    controller, _, _ = steins_rig(mode, cache_bytes=2048)
    rng = make_rng(9, "modes")
    for addr in rng.integers(0, 3000, 400):
        controller.write_data(int(addr), 1)
    assert_linc_invariant(controller)


def test_flush_all_zeroes_lincs():
    controller, _, _ = steins_rig(cache_bytes=2048)
    for addr in range(0, 512, 4):
        controller.write_data(addr, addr)
    controller.flush_all()
    assert controller.metacache.dirty_count() == 0
    assert all(v == 0 for v in controller.lincs.values())


def test_persisted_nodes_sealed_under_own_gensum():
    """Sec. III-B: a flushed node's HMAC verifies under its gensum, which
    is what makes recovery possible without the parent."""
    controller, device, _ = steins_rig(cache_bytes=1024)
    for addr in range(0, 4096, 8):
        controller.write_data(addr, addr)
    controller.flush_all()
    for _, snap in device.populated(Region.TREE):
        node = SITNode.from_snapshot(snap)
        assert node.hmac_matches(controller.engine, node.gensum())


def test_parent_slot_equals_child_gensum():
    """The generated-counter protocol: parent slot == child's persisted
    gensum, for every persisted parent-child pair."""
    controller, device, _ = steins_rig(cache_bytes=1024)
    for addr in range(0, 4096, 8):
        controller.write_data(addr, 5)
    controller.flush_all()
    g = controller.geometry
    for offset, snap in device.populated(Region.TREE):
        level, index = g.offset_to_node(offset)
        child = SITNode.from_snapshot(snap)
        parent = g.parent(level, index)
        slot = g.parent_slot(level, index)
        if parent is None:
            assert controller.root.counter(slot) == child.gensum()
        else:
            psnap = device.peek(Region.TREE, g.node_offset(*parent))
            assert psnap is not None, "parent must persist after child"
            assert SITNode.from_snapshot(psnap).counter(slot) \
                == child.gensum()


def test_nv_buffer_defers_uncached_parent_updates():
    controller, _, _ = steins_rig(cache_bytes=1024)
    rng = make_rng(13, "buffer")
    for addr in rng.integers(0, 8000, 800):
        controller.write_data(int(addr), 3)
    assert controller.stats.extra.get("buffered_parent_updates", 0) > 0
    # the buffer never exceeds its 128 B capacity
    assert len(controller.nv_buffer) <= controller.nv_buffer.capacity
    assert_linc_invariant(controller)


def test_reads_correct_with_pending_buffer_entries():
    """A child sealed under a buffered (pending) parent update must still
    verify on refetch (the paper drains; we consult the buffer)."""
    controller, _, _ = steins_rig(cache_bytes=1024)
    rng = make_rng(14, "pending")
    addrs = [int(a) for a in rng.integers(0, 8000, 600)]
    for addr in addrs:
        controller.write_data(addr, addr ^ 0xF0F0)
    for addr in sorted(set(addrs)):
        assert controller.read_data(addr) == addr ^ 0xF0F0


def test_record_tracking_only_on_clean_to_dirty():
    controller, _, _ = steins_rig()
    controller.write_data(0, 1)   # leaf clean->dirty: one record update
    updates_after_first = controller.tracker.stats["record_updates"]
    controller.write_data(0, 2)   # leaf already dirty: no record update
    assert controller.tracker.stats["record_updates"] == updates_after_first


def test_records_cover_all_dirty_nodes():
    controller, device, _ = steins_rig(cache_bytes=2048)
    rng = make_rng(15, "records")
    for addr in rng.integers(0, 4000, 300):
        controller.write_data(int(addr), 1)
    controller.tracker.flush_on_crash()
    offsets, _ = controller.tracker.read_all_offsets(device)
    dirty = {off for off, _ in controller.metacache.dirty_entries()}
    assert dirty <= offsets   # every dirty node is recorded (supersets ok)


def test_write_path_issues_no_tree_reads_when_parent_uncached():
    """Sec. III-E: evicting a dirty node whose parent is uncached must
    not read the parent (the NV buffer absorbs the update)."""
    controller, device, _ = steins_rig(cache_bytes=1024)
    # populate and flush so later evictions have uncached parents
    for addr in range(0, 2048, 8):
        controller.write_data(addr, 1)
    controller.flush_all()
    controller.metacache.clear()
    controller.nv_buffer.drain()
    # one write whose leaf fetch walks the tree, then eviction pressure
    reads_before = device.stats.reads[Region.TREE]
    controller.write_data(0, 2)
    # the write itself fetched the branch; now evict the dirty leaf by
    # filling its set -- buffered, so tree reads stay flat until the
    # buffer fills
    assert len(controller.nv_buffer) == 0 or \
        device.stats.reads[Region.TREE] >= reads_before


def test_monotonicity_guard():
    controller, _, _ = steins_rig()
    with pytest.raises(AssertionError):
        controller._check_monotone(5, 4, 0, 0)
    controller._check_monotone(5, 5, 0, 0)


def test_crash_flushes_adr_records():
    controller, device, _ = steins_rig()
    controller.write_data(0, 1)
    assert device.peek(Region.RECORDS, 0) is None or True
    controller.crash()
    offsets, _ = controller.tracker.read_all_offsets(device)
    leaf_offset = controller.geometry.node_offset(0, 0)
    assert leaf_offset in offsets
