"""Full-system integration: hierarchy + controller + NVM + reference model.

The strongest checks in the repository: every scheme must return exactly
the data that was written, through cache churn, crashes at arbitrary
points, and recovery — with the golden-state validation of
``repro.sim.crash`` asserted inside.
"""
import pytest

from repro.common.config import small_config
from repro.sim.crash import crash_and_recover, run_with_crash
from repro.sim.runner import VARIANTS, make_system, run_trace
from repro.schemes import scheme_names, variant_table
from repro.sim.system import SCHEMES, SecureNVMSystem, make_layout

RECOVERABLE = ("asit", "star", "scue", "steins-gc", "steins-sc",
               "phoenix", "secpm")
ALL_VARIANTS = tuple(VARIANTS)


def small_variant_system(variant: str) -> SecureNVMSystem:
    scheme, mode = VARIANTS[variant]
    return SecureNVMSystem(scheme, small_config(mode), check=True)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_trace_roundtrip_and_verify(variant, small_trace):
    system = small_variant_system(variant)
    run_trace(system, small_trace, "pers_hash", flush_writes=True)
    assert system.verify_all_persisted() > 0


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_all_schemes_persist_identical_data(variant, small_trace):
    """Every scheme must expose the same architectural memory state."""
    reference = small_variant_system("wb-gc")
    run_trace(reference, small_trace, "pers_hash", flush_writes=True)
    system = small_variant_system(variant)
    run_trace(system, small_trace, "pers_hash", flush_writes=True)
    assert system.persisted == reference.persisted


@pytest.mark.parametrize("variant", RECOVERABLE)
@pytest.mark.parametrize("crash_at", [1, 600, 1700])
def test_crash_recover_continue(variant, crash_at, small_trace):
    system = small_variant_system(variant)
    report = run_with_crash(system, small_trace, crash_at=crash_at,
                            flush_writes=True)
    assert report.scheme in variant
    assert system.verify_all_persisted() > 0


@pytest.mark.parametrize("variant", RECOVERABLE)
def test_repeated_crashes(variant, small_trace):
    system = small_variant_system(variant)
    for i, (is_write, addr, gap) in enumerate(small_trace.head(1200)):
        system.advance(gap)
        if is_write:
            system.store(addr, flush=True)
        else:
            system.load(addr)
        if i in (200, 500, 900):
            crash_and_recover(system)
    system.verify_all_persisted()


def test_crash_rolls_back_unflushed_stores():
    system = small_variant_system("steins-gc")
    system.store(5)           # not flushed: volatile
    value_before = system.current[5]
    system.crash()
    system.recover()
    assert system.current.get(5, 0) == system.persisted.get(5, 0)
    assert system.persisted.get(5) != value_before or \
        system.persisted.get(5) is None


def test_flushed_stores_survive_crash():
    system = small_variant_system("steins-gc")
    system.store(5, flush=True)
    value = system.persisted[5]
    crash_and_recover(system)
    outcome = system.load(5)
    assert system.current[5] == value


def test_layout_covers_all_regions():
    cfg = small_config()
    layout = make_layout(cfg)
    assert layout.data_lines == cfg.num_data_blocks
    assert layout.tree_lines > 0
    assert layout.shadow_lines == cfg.security.metadata_cache.num_lines
    assert layout.bitmap_lines >= 1
    assert layout.record_lines >= 1


def test_unknown_scheme_rejected():
    from repro.common.errors import ConfigError
    with pytest.raises(ConfigError):
        SecureNVMSystem("bogus", small_config())
    with pytest.raises(ConfigError):
        make_system("bogus-variant")


def test_schemes_registry():
    assert set(SCHEMES) == {"wb", "asit", "star", "steins", "scue",
                            "phoenix", "secpm"}
    assert set(VARIANTS) == {"wb-gc", "wb-sc", "asit", "star", "scue",
                             "steins-gc", "steins-sc", "phoenix", "secpm"}
    # the sim-facing tables are registry views, not separate sources
    assert set(SCHEMES) == set(scheme_names())
    assert VARIANTS == variant_table()


def test_llc_absorbs_repeated_hits(make_small_system):
    system = make_small_system("wb")
    system.load(0)
    reads_after_first = system.controller.stats.data_reads
    for _ in range(10):
        system.load(0)
    assert system.controller.stats.data_reads == reads_after_first


def test_result_metrics_populated(make_small_system, small_trace):
    system = make_small_system("steins")
    result = run_trace(system, small_trace, "pers_hash", flush_writes=True)
    assert result.exec_time_ns > 0
    assert result.data_writes > 0
    assert result.avg_write_latency_ns > 0
    assert result.nvm_write_traffic > 0
    assert result.energy_nj > 0
    assert 0 < result.metadata_cache_hit_rate <= 1
    d = result.as_dict()
    assert d["scheme"] == "steins"


def test_store_then_load_same_value(make_small_system):
    system = make_small_system("star")
    system.store(42, flush=True)
    expected = system.current[42]
    # force the line out of the hierarchy so the load hits the controller
    system.hierarchy.clear()
    system.load(42)
    assert system.current[42] == expected
