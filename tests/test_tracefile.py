"""Trace save/load round-trips and error handling."""
import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workloads import get_profile
from repro.workloads.tracefile import FORMAT_VERSION, load_trace, save_trace


def test_roundtrip(tmp_path):
    trace = get_profile("cactusADM").generate(3, 500, 2048)
    path = tmp_path / "cactus.npz"
    save_trace(path, trace, name="cactusADM", seed=3)
    loaded, meta = load_trace(path)
    assert np.array_equal(loaded.address, trace.address)
    assert np.array_equal(loaded.is_write, trace.is_write)
    assert np.array_equal(loaded.gap_cycles, trace.gap_cycles)
    assert meta["name"] == "cactusADM"
    assert meta["seed"] == 3
    assert meta["accesses"] == 500
    assert meta["format_version"] == FORMAT_VERSION


def test_loaded_trace_drives_a_system(tmp_path):
    from repro.common.config import small_config
    from repro.sim.runner import make_system, run_trace

    trace = get_profile("pers_hash").generate(5, 800, 2048)
    path = tmp_path / "t.npz"
    save_trace(path, trace)
    loaded, _ = load_trace(path)
    system = make_system("steins-gc", small_config())
    result = run_trace(system, loaded, "pers_hash", flush_writes=True)
    assert result.data_writes > 0
    system.verify_all_persisted()


def test_missing_file_raises():
    with pytest.raises(ConfigError, match="cannot load"):
        load_trace("/nonexistent/trace.npz")


def test_garbage_file_raises(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"not a npz at all")
    with pytest.raises(ConfigError):
        load_trace(path)


def test_missing_arrays_raise(tmp_path):
    path = tmp_path / "partial.npz"
    np.savez_compressed(path, address=np.arange(4))
    with pytest.raises(ConfigError, match="missing arrays"):
        load_trace(path)


def test_future_format_rejected(tmp_path):
    import json
    trace = get_profile("pers_swap").generate(1, 100, 512)
    path = tmp_path / "future.npz"
    meta = {"format_version": FORMAT_VERSION + 1, "accesses": len(trace)}
    np.savez_compressed(
        path, is_write=trace.is_write, address=trace.address,
        gap_cycles=trace.gap_cycles,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8))
    with pytest.raises(ConfigError, match="newer format"):
        load_trace(path)
