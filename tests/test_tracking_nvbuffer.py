"""Steins' offset-record tracker and NV parent buffer (Sec. III-C/III-E)."""
import pytest

from repro.common.config import EnergyConfig, small_config
from repro.common.constants import OFFSET_EMPTY
from repro.common.errors import ConfigError
from repro.core.nvbuffer import BufferedUpdate, NVParentBuffer
from repro.core.tracking import OffsetRecordTracker
from repro.nvm.device import NVMDevice
from repro.nvm.energy import EnergyMeter
from repro.nvm.layout import Region, build_layout
from repro.sim.clock import MemClock


@pytest.fixture
def rig():
    cfg = small_config()
    layout = build_layout(data_lines=4096, tree_lines=1024,
                          metadata_cache_lines=256)
    device = NVMDevice(layout)
    clock = MemClock(cfg, device, EnergyMeter(EnergyConfig()))
    tracker = OffsetRecordTracker(num_cache_slots=256, cache_lines=4,
                                  device=device)
    return tracker, device, clock


class TestTracker:
    def test_record_and_scan(self, rig):
        tracker, device, clock = rig
        tracker.record(slot=0, offset=100, clock=clock)
        tracker.record(slot=17, offset=200, clock=clock)
        tracker.flush_on_crash()
        offsets, lines = tracker.read_all_offsets(device)
        assert offsets == {100, 200}
        assert lines == tracker.num_record_lines

    def test_sixteen_slots_share_a_line(self, rig):
        tracker, device, clock = rig
        assert tracker.num_record_lines == 16   # 256 slots / 16
        for slot in range(16):
            tracker.record(slot, 1000 + slot, clock)
        # all 16 updates coalesced into one cached line: no NVM writes
        assert device.stats.writes[Region.RECORDS] == 0

    def test_line_cache_eviction_writes_back(self, rig):
        tracker, device, clock = rig
        # touch 5 distinct record lines with a 4-line cache
        for line in range(5):
            tracker.record(line * 16, 7000 + line, clock)
        assert tracker.stats["line_fills"] == 5
        assert device.stats.writes[Region.RECORDS] >= 1

    def test_same_offset_rewrite_is_free(self, rig):
        tracker, device, clock = rig
        tracker.record(0, 42, clock)
        before = tracker.stats["line_fills"]
        tracker.record(0, 42, clock)   # identical record: no line dirtying
        assert tracker.stats["line_fills"] == before
        tracker.flush_on_crash()
        offsets, _ = tracker.read_all_offsets(device)
        assert offsets == {42}

    def test_slot_overwrite_replaces_offset(self, rig):
        tracker, device, clock = rig
        tracker.record(3, 111, clock)
        tracker.record(3, 222, clock)   # new occupant of the cache line
        tracker.flush_on_crash()
        offsets, _ = tracker.read_all_offsets(device)
        assert offsets == {222}

    def test_crash_flush_persists_cached_lines(self, rig):
        tracker, device, clock = rig
        tracker.record(0, 1, clock)
        assert device.peek(Region.RECORDS, 0) is None   # still in ADR
        tracker.flush_on_crash()
        stored = device.peek(Region.RECORDS, 0)
        assert stored is not None and stored[0] == 1
        assert all(v == OFFSET_EMPTY for v in stored[1:])

    def test_reset_clears_region(self, rig):
        tracker, device, clock = rig
        tracker.record(0, 1, clock)
        tracker.flush_on_crash()
        tracker.reset()
        offsets, _ = tracker.read_all_offsets(device)
        assert offsets == set()

    def test_slot_bounds(self, rig):
        tracker, _, clock = rig
        with pytest.raises(ConfigError):
            tracker.record(256, 0, clock)

    def test_invalid_sizes(self, rig):
        _, device, _ = rig
        with pytest.raises(ConfigError):
            OffsetRecordTracker(0, 4, device)
        with pytest.raises(ConfigError):
            OffsetRecordTracker(16, 0, device)


class TestNVBuffer:
    def test_fifo_order(self):
        buf = NVParentBuffer(capacity=4)
        for i in range(3):
            buf.append(BufferedUpdate(0, i, i * 10))
        drained = buf.drain()
        assert [u.child_index for u in drained] == [0, 1, 2]
        assert len(buf) == 0

    def test_capacity(self):
        buf = NVParentBuffer(capacity=2)
        buf.append(BufferedUpdate(0, 0, 1))
        buf.append(BufferedUpdate(0, 1, 2))
        assert buf.full
        with pytest.raises(ConfigError):
            buf.append(BufferedUpdate(0, 2, 3))

    def test_latest_counter_for(self):
        buf = NVParentBuffer()
        buf.append(BufferedUpdate(1, 5, 100))
        buf.append(BufferedUpdate(1, 5, 120))   # re-eviction of same child
        buf.append(BufferedUpdate(2, 5, 999))
        assert buf.latest_counter_for(1, 5) == 120
        assert buf.latest_counter_for(2, 5) == 999
        assert buf.latest_counter_for(0, 0) is None

    def test_default_capacity_matches_128_bytes(self):
        assert NVParentBuffer().capacity == 8

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            NVParentBuffer(capacity=0)
