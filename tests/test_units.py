"""Unit-conversion helpers."""
import pytest

from repro.common import units


def test_cycles_to_ns_at_2ghz():
    # the paper's 40-cycle hash at 2 GHz is 20 ns
    assert units.cycles_to_ns(40, 2.0) == pytest.approx(20.0)


def test_ns_to_cycles_roundtrip():
    for ns in (0.5, 15.0, 300.0):
        assert units.cycles_to_ns(
            units.ns_to_cycles(ns, 2.0), 2.0) == pytest.approx(ns)


def test_invalid_clock_rejected():
    with pytest.raises(ValueError):
        units.cycles_to_ns(10, 0)
    with pytest.raises(ValueError):
        units.ns_to_cycles(10, -1)


def test_pretty_size_exact_units():
    assert units.pretty_size(256 * 1024) == "256KB"
    assert units.pretty_size(16 * units.GB) == "16GB"
    assert units.pretty_size(64) == "64B"


def test_pretty_size_fractional():
    assert units.pretty_size(1536) == "1.50KB"


def test_pretty_size_rejects_negative():
    with pytest.raises(ValueError):
        units.pretty_size(-1)


def test_pretty_time_scales():
    assert units.pretty_time_ns(12.0) == "12.0ns"
    assert units.pretty_time_ns(4_400.0) == "4.400us"
    assert units.pretty_time_ns(2_500_000.0) == "2.500ms"
    assert units.pretty_time_ns(4.4e8).endswith("ms")
    assert units.pretty_time_ns(4.4e9) == "4.400s"


def test_ns_to_seconds():
    assert units.ns_to_seconds(1e9) == 1.0
