"""Workload generators: determinism, shapes, paper workload set."""
import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workloads import (
    ALL_PROFILES,
    PAPER_WORKLOADS,
    TraceArrays,
    concat,
    get_profile,
    interleave,
)
from repro.workloads import synthetic as syn
from repro.common.rng import make_rng


def test_paper_workload_set():
    """Eight SPEC-like benchmarks plus the two STAR persistent ones."""
    assert len(PAPER_WORKLOADS) == 10
    assert set(PAPER_WORKLOADS) <= set(ALL_PROFILES)
    persistent = [w for w in PAPER_WORKLOADS
                  if ALL_PROFILES[w].persistent]
    assert sorted(persistent) == ["pers_hash", "pers_swap"]


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
def test_generation_is_deterministic(name):
    profile = get_profile(name)
    a = profile.generate(seed=5, n=2000, footprint=4096)
    b = profile.generate(seed=5, n=2000, footprint=4096)
    assert np.array_equal(a.address, b.address)
    assert np.array_equal(a.is_write, b.is_write)
    assert np.array_equal(a.gap_cycles, b.gap_cycles)
    c = profile.generate(seed=6, n=2000, footprint=4096)
    # a different seed must change *something* (pure sequential sweeps
    # keep their addresses but reshuffle write flags and gaps)
    assert not (np.array_equal(a.address, c.address)
                and np.array_equal(a.is_write, c.is_write)
                and np.array_equal(a.gap_cycles, c.gap_cycles))


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
def test_addresses_within_scaled_footprint(name):
    profile = get_profile(name)
    trace = profile.generate(seed=1, n=3000, footprint=4096)
    limit = max(64, int(4096 * profile.footprint_mult))
    assert trace.address.min() >= 0
    assert trace.address.max() < limit
    assert len(trace) > 0


def test_write_fractions_match_characters():
    def gen(n):
        return get_profile(n).generate(1, 4000, 4096).write_fraction
    assert gen("libquantum") < 0.25          # streaming reads
    assert gen("cactusADM") > 0.35           # write-heavy stencils
    assert gen("pers_swap") == pytest.approx(0.5)   # RMW pairs
    assert gen("pers_hash") > 0.5            # insert-dominated


def test_sequential_wraps():
    t = syn.sequential(1, 100, base=10, footprint=30)
    assert set(t.address) <= set(range(10, 40))
    assert t.address[0] == 10 and t.address[30] == 10


def test_strided_pattern():
    t = syn.strided(1, 10, base=0, footprint=100, stride=7)
    assert list(t.address[:3]) == [0, 7, 14]


def test_zipf_is_skewed():
    t = syn.zipf(1, 5000, 0, 1000, skew=1.5)
    _, counts = np.unique(t.address, return_counts=True)
    # the hottest block must absorb far more than the uniform share
    assert counts.max() > 5 * (5000 / 1000)


def test_pointer_chase_visits_distinct_blocks():
    t = syn.pointer_chase(1, 64, 0, 64)
    assert len(set(t.address.tolist())) == 64  # full permutation cycle


def test_read_modify_write_pairs():
    t = syn.read_modify_write(1, 5, 0, 100)
    assert len(t) == 10
    assert list(t.is_write[:2]) == [False, True]
    assert t.address[0] == t.address[1]


def test_generator_validation():
    with pytest.raises(ConfigError):
        syn.sequential(1, 0, 0, 10)
    with pytest.raises(ConfigError):
        syn.strided(1, 10, 0, 10, stride=0)
    with pytest.raises(ConfigError):
        syn.zipf(1, 10, 0, 10, skew=1.0)
    with pytest.raises(ConfigError):
        syn.sequential(1, 10, 0, 10, write_frac=1.5)
    with pytest.raises(ConfigError):
        syn.sequential(1, 10, 0, 10, gap_mean=-1)


def test_trace_helpers():
    a = syn.sequential(1, 50, 0, 10)
    b = syn.sequential(2, 50, 100, 10)
    joined = concat([a, b])
    assert len(joined) == 100
    mixed = interleave([a, b], chunk=10, rng=make_rng(3, "ix"))
    assert len(mixed) == 100
    assert set(mixed.address.tolist()) == \
        set(a.address.tolist()) | set(b.address.tolist())
    head = joined.head(7)
    assert len(head) == 7


def test_trace_validation():
    with pytest.raises(ConfigError):
        TraceArrays(np.array([True]), np.array([1, 2]), np.array([0]))
    with pytest.raises(ConfigError):
        concat([])
    with pytest.raises(ConfigError):
        interleave([syn.sequential(1, 10, 0, 10)], chunk=0,
                   rng=make_rng(1))


def test_unknown_profile_helpful_error():
    with pytest.raises(KeyError, match="available"):
        get_profile("nope")


def test_footprint_property():
    t = syn.sequential(1, 100, 0, 10)
    assert t.footprint_blocks == 10
