"""Zero-denominator averages must be exact 0.0, end to end.

Every ``x / n if n else 0.0`` average in the stats facade
(``TimingStats.avg_read_ns``/``avg_write_ns``,
``ControllerStats.avg_read_ns``/``avg_write_ns``,
``CacheStats.hit_rate``) has a zero-access edge the figures never
exercise; these tests pin it down both on the dataclasses directly and
through a full zero-access simulation whose ``RunResult`` must survive
a ``to_json``/``from_json`` round trip bit-for-bit.
"""
import numpy as np

from repro.baselines.base import ControllerStats
from repro.mem.cache import CacheStats
from repro.nvm.timing import TimingStats
from repro.obs import system_registry
from repro.sim.runner import RunSpec, make_system, run_cell, run_trace
from repro.sim.stats import RunResult
from repro.workloads.trace import TraceArrays


def empty_trace() -> TraceArrays:
    return TraceArrays(
        is_write=np.zeros(0, dtype=np.bool_),
        address=np.zeros(0, dtype=np.int64),
        gap_cycles=np.zeros(0, dtype=np.float64),
    )


class TestDataclassZeroAverages:
    def test_timing_stats(self):
        s = TimingStats()
        assert s.avg_read_ns == 0.0
        assert s.avg_write_ns == 0.0
        assert isinstance(s.avg_read_ns, float)

    def test_controller_stats(self):
        s = ControllerStats()
        assert s.avg_read_ns == 0.0
        assert s.avg_write_ns == 0.0

    def test_cache_stats(self):
        s = CacheStats()
        assert s.accesses == 0
        assert s.hit_rate == 0.0


class TestZeroAccessRun:
    def run_empty(self, variant: str) -> RunResult:
        system = make_system(variant, check=True)
        return run_trace(system, empty_trace(), "empty")

    def test_all_metrics_exactly_zero(self):
        for variant in ("wb-gc", "steins-gc", "steins-sc"):
            r = self.run_empty(variant)
            assert r.exec_time_ns == 0.0
            assert r.data_reads == 0
            assert r.data_writes == 0
            assert r.avg_read_latency_ns == 0.0
            assert r.avg_write_latency_ns == 0.0
            assert r.nvm_write_traffic == 0
            assert r.nvm_read_traffic == 0
            assert r.energy_nj == 0.0
            assert r.metadata_cache_hit_rate == 0.0

    def test_round_trip_preserves_exact_zeros(self):
        r = self.run_empty("steins-gc")
        back = RunResult.from_json(r.to_json())
        assert back == r
        # exact float equality, not approx: 0/0-guarded averages must
        # serialize as real 0.0, never -0.0, nan or 1e-17 residue
        assert back.avg_read_latency_ns == 0.0
        assert back.avg_write_latency_ns == 0.0
        assert back.metadata_cache_hit_rate == 0.0

    def test_as_dict_of_zero_run(self):
        d = self.run_empty("wb-gc").as_dict()
        assert d["avg_read_latency_ns"] == 0.0
        assert d["avg_write_latency_ns"] == 0.0
        assert d["detail.max_read_latency_ns"] == 0.0
        assert d["detail.max_write_latency_ns"] == 0.0

    def test_registry_gauges_of_zero_run(self):
        """The repro.obs facade reports the same exact zeros."""
        system = make_system("steins-gc")
        run_trace(system, empty_trace(), "empty")
        reg = system_registry(system)
        assert reg.gauge("nvm.timing.avg_read_ns").value == 0.0
        assert reg.gauge("nvm.timing.avg_write_ns").value == 0.0
        assert reg.gauge("ctrl.avg_read_latency_ns").value == 0.0
        assert reg.gauge("ctrl.avg_write_latency_ns").value == 0.0
        assert reg.gauge("metacache.hit_rate").value == 0.0

    def test_zero_accesses_rejected_by_generator(self):
        """The workload generator's contract: a zero-length *generated*
        trace is a configuration error — the supported zero-access path
        is an explicit empty TraceArrays (tests above)."""
        import pytest

        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            run_cell(RunSpec("wb-gc", "pers_hash", accesses=0,
                             footprint_blocks=64))
