"""Cold/warm crash-exploration smoke bench (``make explore-smoke``).

Runs the full-enumeration ``--small`` exploration twice through one
result cache and pins the two properties the explorer's incrementality
rests on:

* the warm rerun performs **zero** re-simulations (every cell cached);
* cold and warm reports compare equal, byte for byte once serialized
  (the report carries no timing or cache provenance).

Then writes throughput numbers to ``BENCH_explore.json``: explored
candidates per second, the pruned fraction of the crash space, and the
warm cache hit rate.  Exits non-zero on any divergence, an escaped
mutant, a warm re-simulation, or a cold/warm report mismatch.

Usage::

    PYTHONPATH=src python tools/explore_bench.py [out.json [cache-dir]]
"""
from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time

from repro.exec import ResultCache
from repro.explore import run_explore

#: the --small preset: tiny trace, full enumeration, all four
#: recovery-capable schemes, mutant self-test on
PRESET = dict(accesses=60, footprint=256, seed=2025,
              class_budget=None, recovery_cap=None)


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_explore.json"
    cache_dir = argv[2] if len(argv) > 2 else None
    scratch = None
    if cache_dir is None:
        scratch = tempfile.mkdtemp(prefix="explore-bench-")
        cache_dir = scratch
    try:
        cache = ResultCache(cache_dir)

        t0 = time.perf_counter()
        cold = run_explore(cache=cache, **PRESET)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_explore(cache=cache, **PRESET)
        warm_s = time.perf_counter() - t0
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    failures = []
    if not cold.ok:
        failures.append(
            f"exploration not clean: {len(cold.failures)} failure(s), "
            f"escaped mutants {[m.name for m in cold.escaped_mutants]}")
    if warm.cells_executed != 0:
        failures.append(
            f"warm rerun re-simulated {warm.cells_executed} cells")
    cold_doc = json.dumps(cold.to_json(), sort_keys=True)
    warm_doc = json.dumps(warm.to_json(), sort_keys=True)
    if cold_doc != warm_doc:
        failures.append("cold and warm reports differ")

    total_cells = warm.cells_executed + warm.cells_cached
    candidates = cold.explored_total
    space = candidates + cold.pruned_total
    bench = {
        "schemes": [v.scheme for v in cold.variants],
        "accesses": PRESET["accesses"],
        "footprint": PRESET["footprint"],
        "seed": PRESET["seed"],
        "explored": candidates,
        "pruned": cold.pruned_total,
        "pruned_fraction": round(cold.pruned_total / space, 4) if space
        else 0.0,
        "candidates_per_sec": round(candidates / cold_s, 2) if cold_s
        else 0.0,
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "cells": total_cells,
        "cache_hit_rate": round(warm.cells_cached / total_cells, 4)
        if total_cells else 0.0,
        "mutants_caught": [m.name for m in cold.mutants if m.caught],
        "ok": not failures,
    }
    with open(out_path, "w") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for line in cold.summary_lines():
        print(line)
    print(f"bench: {bench['explored']} explored in {bench['cold_seconds']}s "
          f"({bench['candidates_per_sec']}/s), pruned fraction "
          f"{bench['pruned_fraction']}, warm hit rate "
          f"{bench['cache_hit_rate']} -> {out_path}")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
