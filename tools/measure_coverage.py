"""Approximate line coverage of src/repro without coverage.py.

CI enforces the floor with pytest-cov (from the ``lint`` extra); this
tool exists for environments where that extra cannot be installed.  It
traces the tier-1 suite with ``sys.settrace`` and compares executed
lines against the executable-statement lines each module's AST
declares.  The numbers track pytest-cov to within a point or two
(docstring and ``TYPE_CHECKING`` accounting differs slightly), so read
them as a floor-setting aid, not gospel.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Exits non-zero if pytest fails.  Prints per-package and total coverage.
"""
from __future__ import annotations

import ast
import os
import sys
import threading
from collections import defaultdict

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro") + os.sep

_hits: dict[str, set[int]] = defaultdict(set)


def _tracer(frame, event, arg):  # noqa: ANN001 - settrace signature
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    if event == "line":
        _hits[filename].add(frame.f_lineno)
    return _tracer


def _executable_lines(path: str) -> set[int]:
    """Statement lines the AST declares (coverage.py's approximation)."""
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            lines.add(node.lineno)
    return lines


def main(argv: list[str]) -> int:
    # ``python tools/measure_coverage.py`` puts tools/ first on the
    # path; the suite imports ``tests.*`` relative to the repo root
    if ROOT not in sys.path:
        sys.path.insert(0, ROOT)
    os.chdir(ROOT)
    import pytest

    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        status = pytest.main(argv or ["-x", "-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    total_exec = total_hit = 0
    by_package: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for dirpath, _dirnames, filenames in os.walk(SRC.rstrip(os.sep)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            executable = _executable_lines(path)
            hit = _hits.get(path, set()) & executable
            rel = os.path.relpath(path, SRC)
            package = rel.split(os.sep)[0]
            by_package[package][0] += len(executable)
            by_package[package][1] += len(hit)
            total_exec += len(executable)
            total_hit += len(hit)

    print()
    print("approximate line coverage of src/repro (settrace)")
    for package in sorted(by_package):
        n_exec, n_hit = by_package[package]
        pct = 100.0 * n_hit / n_exec if n_exec else 100.0
        print(f"  {package:<16} {n_hit:>6}/{n_exec:<6} {pct:5.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':<16} {total_hit:>6}/{total_exec:<6} {pct:5.1f}%")
    return int(status)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
