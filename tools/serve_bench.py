"""Distributed-sweep smoke bench (``make serve-smoke``).

Boots the real ``repro serve`` CLI as a subprocess, routes a figure
batch and an oracle batch through it, and pins the service's acceptance
properties:

* the distributed report is **byte-identical** to a serial
  ``run_sweep`` of the same specs (cold and warm);
* the warm rerun recomputes **zero** cells (every one answered from the
  shared content-addressed cache);
* duplicate specs in one batch are computed once (in-flight dedup).

Then writes throughput numbers to ``BENCH_sweep.json``: cells per
second cold and warm, the warm cache hit rate, and the worker count.
Exits non-zero on any mismatch, warm recompute, or service failure.

Usage::

    PYTHONPATH=src python tools/serve_bench.py [out.json [cache-dir]]
"""
from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

WORKERS = 2

# figure batch: a small sim matrix (two GC variants, two workloads)
SIM = dict(accesses=1200, footprint=4096, seed=2024)
SIM_VARIANTS = ("steins-gc", "wb-gc")
SIM_WORKLOADS = ("pers_hash", "pers_swap")

# oracle batch: the differential suite's own deterministic case plan
ORACLE = dict(accesses=300, footprint=1024, seed=1)
ORACLE_SCHEMES = ["steins"]
ORACLE_WORKLOADS = ["pers_hash"]


def build_batch():
    from repro.analysis.figures import figure_config
    from repro.common.config import small_config
    from repro.exec import CellSpec, config_to_dict
    from repro.oracle.sweep import build_suite

    fig_cfg = config_to_dict(figure_config())
    specs = [CellSpec("sim", v, w, SIM["accesses"], SIM["footprint"],
                      SIM["seed"], config=fig_cfg)
             for v in SIM_VARIANTS for w in SIM_WORKLOADS]
    specs += build_suite(ORACLE_SCHEMES, ORACLE_WORKLOADS,
                         ORACLE["accesses"], ORACLE["footprint"],
                         ORACLE["seed"],
                         small_config(metadata_cache_bytes=2048))
    # a duplicate of the first cell exercises in-flight dedup
    specs.append(specs[0])
    return specs


def fingerprints(report) -> list[str]:
    return [json.dumps(v.to_json(), sort_keys=True)
            for v in report.values]


def start_service(sock: str, cache_dir: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--workers", str(WORKERS), "--cache-dir", cache_dir])
    deadline = time.monotonic() + 30.0
    while not os.path.exists(sock):
        if proc.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError("repro serve never bound its socket")
        time.sleep(0.05)
    return proc


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_sweep.json"
    cache_dir = argv[2] if len(argv) > 2 else None
    scratch = tempfile.mkdtemp(prefix="serve-bench-")
    if cache_dir is None:
        cache_dir = os.path.join(scratch, "cache")

    from repro.exec import cell_key, run_sweep
    from repro.serve.client import ServiceClient

    specs = build_batch()
    unique = len({cell_key(s) for s in specs})

    t0 = time.perf_counter()
    serial = run_sweep(specs)
    serial_s = time.perf_counter() - t0
    serial_doc = fingerprints(serial)

    sock = os.path.join(scratch, "svc.sock")
    proc = start_service(sock, cache_dir)
    failures: list[str] = []
    try:
        client = ServiceClient(sock)
        if not client.ping():
            failures.append("service did not answer ping")

        t0 = time.perf_counter()
        cold = run_sweep(specs, service=sock)
        cold_s = time.perf_counter() - t0
        if fingerprints(cold) != serial_doc:
            failures.append("cold distributed report != serial report")
        if cold.deduped < 1:
            failures.append("duplicate spec was not deduped in flight")

        t0 = time.perf_counter()
        warm = run_sweep(specs, service=sock)
        warm_s = time.perf_counter() - t0
        if fingerprints(warm) != serial_doc:
            failures.append("warm distributed report != serial report")
        if warm.executed != 0:
            failures.append(
                f"warm rerun recomputed {warm.executed} cells")

        metrics = client.stats()["metrics"]
        executed = metrics["serve.cells.executed"]["value"]
        client.shutdown()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        shutil.rmtree(scratch, ignore_errors=True)

    total = len(specs)
    bench = {
        "workers": WORKERS,
        "cells": total,
        "unique_cells": unique,
        "executed_on_service": executed,
        "serial_seconds": round(serial_s, 3),
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "cells_per_sec_cold": round(total / cold_s, 2) if cold_s
        else 0.0,
        "cells_per_sec_warm": round(total / warm_s, 2) if warm_s
        else 0.0,
        "cache_hit_rate": round(warm.cached / total, 4) if total
        else 0.0,
        "deduped": cold.deduped,
        "ok": not failures,
    }
    with open(out_path, "w") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"bench: {total} cells ({unique} unique) on {WORKERS} "
          f"workers: cold {bench['cells_per_sec_cold']}/s, warm "
          f"{bench['cells_per_sec_warm']}/s, hit rate "
          f"{bench['cache_hit_rate']} -> {out_path}")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
